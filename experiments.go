package fxa

import (
	"context"
	"fmt"
	"math"
	"strings"
	"sync/atomic"
	"time"

	"fxa/internal/config"
	"fxa/internal/emu"
	"fxa/internal/energy"
	"fxa/internal/sweep"
)

// EnergyBreakdown re-exports the per-component energy split.
type EnergyBreakdown = energy.Breakdown

// AreaBreakdown re-exports the per-component area split.
type AreaBreakdown = energy.AreaBreakdown

// Component re-exports the breakdown component identifiers.
type Component = energy.Component

// Components returns the breakdown components in figure order.
func Components() []Component { return energy.Components() }

// EnergyOf estimates the energy breakdown of a run under the Table II
// device configuration.
func EnergyOf(m Model, r Result) EnergyBreakdown {
	return energy.Estimate(m, config.DefaultDevice(), r)
}

// AreaOf computes the circuit-area breakdown of a model (Figure 9).
func AreaOf(m Model) AreaBreakdown { return energy.AreaOf(m) }

// BenchResult holds one workload's results across all evaluated models.
type BenchResult struct {
	Workload Workload
	Res      map[string]Result
	Energy   map[string]EnergyBreakdown
}

// Evaluation is the full Section VI sweep: every workload on every model,
// with energies. All figure-level views derive from it.
type Evaluation struct {
	MaxInsts uint64
	// Warmup is the per-cell functional fast-forward that preceded each
	// detailed simulation (0 for the classic cold-start evaluation).
	Warmup uint64
	Models []Model
	Rows   []BenchResult
}

// simFingerprint is the cache identity of one (model, workload, warmup,
// maxInsts) simulation: it embeds the complete model and workload
// configurations, so any parameter change misses the result cache.
type simFingerprint struct {
	Kind     string // job family, so distinct job types never collide
	Model    Model
	Workload Workload
	Warmup   uint64
	MaxInsts uint64
}

// ffMeter accumulates functional fast-forward cost across concurrently
// executing sweep jobs; the totals land in sweep.Stats.FFInsts/FFTime.
// A nil meter discards.
type ffMeter struct {
	insts atomic.Uint64
	nanos atomic.Int64
}

func (f *ffMeter) add(insts uint64, d time.Duration) {
	if f == nil {
		return
	}
	f.insts.Add(insts)
	f.nanos.Add(int64(d))
}

// newCellTrace builds the dynamic-instruction stream for one evaluation
// cell: warmup > 0 prepends a functional fast-forward (emulator-only, no
// timing) to the detailed window, and ff (nil-safe) accounts its cost.
func newCellTrace(m Model, w Workload, warmup, maxInsts uint64, ff *ffMeter) (*emu.Stream, error) {
	if warmup == 0 {
		return w.NewTrace(maxInsts)
	}
	prog, err := w.Build()
	if err != nil {
		return nil, err
	}
	// Time only the emulator's fast-forward, not program build
	// or machine setup, so Stats.FFInstsPerSec reports the
	// fast path's real throughput.
	machine := emu.New(prog)
	t0 := time.Now()
	n, err := machine.Run(warmup)
	ff.add(n, time.Since(t0))
	if err != nil {
		return nil, fmt.Errorf("fxa: %s on %s: warmup: %w", m.Name, w.Name, err)
	}
	limit := maxInsts
	if limit > 0 {
		limit += machine.InstCount
	}
	return emu.NewStream(machine, limit), nil
}

// runJob builds the sweep job for one (model, workload) evaluation cell.
func runJob(m Model, w Workload, warmup, maxInsts uint64, ff *ffMeter) sweep.Job {
	return sweep.Job{
		Label:       w.Name + "/" + m.Name,
		Fingerprint: simFingerprint{Kind: "run", Model: m, Workload: w, Warmup: warmup, MaxInsts: maxInsts},
		Run: func(ctx context.Context) (Result, error) {
			// The job's ctx reaches the engine layer, so cancelling the
			// sweep interrupts an in-flight simulation within a few
			// thousand simulated cycles instead of waiting it out.
			trace, err := newCellTrace(m, w, warmup, maxInsts, ff)
			if err != nil {
				return Result{}, err
			}
			res, err := RunTraceContext(ctx, m, trace)
			if err != nil {
				return Result{}, fmt.Errorf("fxa: %s on %s: %w", m.Name, w.Name, err)
			}
			if terr := trace.Err(); terr != nil {
				return Result{}, fmt.Errorf("fxa: %s trace: %w", w.Name, terr)
			}
			return res, nil
		},
	}
}

// EvaluationJob returns the sweep job for one (model, workload) cell —
// the exact job RunEvaluationSweepWarm submits, fingerprint included, so
// an external executor (the fxad daemon) shares cache identity with
// local sweeps: a cell simulated by the CLI is a cache hit for the
// daemon and vice versa.
func EvaluationJob(m Model, w Workload, warmup, maxInsts uint64) SweepJob {
	return runJob(m, w, warmup, maxInsts, nil)
}

// EvaluationJobIntervals is EvaluationJob with live interval streaming:
// onInterval receives each interval as the engine layer cuts it, roughly
// every `every` committed instructions. The returned job's Result is
// stripped of the interval series before it is returned (and thus before
// it is cached), so a streamed run stores and reports a Result
// bit-identical to a plain EvaluationJob run — interval collection is
// observation-only and the wire stream is the only consumer of the
// series. The fingerprint is identical to EvaluationJob's for the same
// reason: streaming does not change what the simulation computes.
func EvaluationJobIntervals(m Model, w Workload, warmup, maxInsts, every uint64, onInterval func(Interval)) SweepJob {
	j := runJob(m, w, warmup, maxInsts, nil)
	j.Run = func(ctx context.Context) (Result, error) {
		trace, err := newCellTrace(m, w, warmup, maxInsts, nil)
		if err != nil {
			return Result{}, err
		}
		res, err := RunTraceIntervalsStream(ctx, m, trace, every, onInterval)
		if err != nil {
			return Result{}, fmt.Errorf("fxa: %s on %s: %w", m.Name, w.Name, err)
		}
		if terr := trace.Err(); terr != nil {
			return Result{}, fmt.Errorf("fxa: %s trace: %w", w.Name, terr)
		}
		res.Intervals = nil
		return res, nil
	}
	return j
}

// RunEvaluation runs all 29 proxies on all five models for maxInsts
// dynamic instructions each and estimates energies. progress, if non-nil,
// is called after each (workload, model) run.
//
// RunEvaluation is the serial-compatible wrapper; RunEvaluationSweep is
// the full engine entry point with parallelism, caching, cancellation
// and run statistics. The two produce bit-identical evaluations.
func RunEvaluation(maxInsts uint64, progress func(workload, model string)) (*Evaluation, error) {
	opts := SweepOptions{Workers: 1}
	if progress != nil {
		opts.OnEvent = func(e sweep.Event) {
			if e.Kind == sweep.EventDone && e.Err == nil {
				w, m, _ := strings.Cut(e.Label, "/")
				progress(w, m)
			}
		}
	}
	ev, _, err := RunEvaluationSweep(context.Background(), maxInsts, opts)
	return ev, err
}

// RunEvaluationSweep runs the full Section VI evaluation matrix through
// the sweep engine: every (workload, model) cell is an independent job
// executed on a bounded worker pool, optionally answered from the result
// cache. Rows are assembled in catalog order regardless of completion
// order, so the evaluation is deterministic for any worker count.
func RunEvaluationSweep(ctx context.Context, maxInsts uint64, opts SweepOptions) (*Evaluation, SweepStats, error) {
	return RunEvaluationSweepWarm(ctx, 0, maxInsts, opts)
}

// RunEvaluationSweepWarm is RunEvaluationSweep with a per-cell functional
// fast-forward of warmup instructions before each detailed window — the
// paper's skip-then-measure methodology (Section VI-A) scaled down. The
// fast-forward runs on the emulator's fast path and its aggregate cost is
// reported in the returned SweepStats (FFInsts/FFTime), so the stats line
// shows how much of the wall clock went to functional skipping.
func RunEvaluationSweepWarm(ctx context.Context, warmup, maxInsts uint64, opts SweepOptions) (*Evaluation, SweepStats, error) {
	ev := &Evaluation{MaxInsts: maxInsts, Warmup: warmup, Models: Models()}
	ws := Workloads()
	var ff ffMeter
	jobs := make([]sweep.Job, 0, len(ws)*len(ev.Models))
	for _, w := range ws {
		for _, m := range ev.Models {
			jobs = append(jobs, runJob(m, w, warmup, maxInsts, &ff))
		}
	}
	results, stats, err := sweep.Run(ctx, jobs, opts)
	stats.FFInsts = ff.insts.Load()
	stats.FFTime = time.Duration(ff.nanos.Load())
	if err != nil {
		return nil, stats, err
	}
	ev, err = NewEvaluation(warmup, maxInsts, results)
	return ev, stats, err
}

// NewEvaluation assembles an Evaluation from per-cell results given in
// Workloads() × Models() order — the order RunEvaluationSweepWarm
// submits its jobs and the order a remote client receives them back.
// Energies are estimated here, so a result set produced elsewhere (the
// fxad daemon) yields an Evaluation bit-identical to a local sweep's.
func NewEvaluation(warmup, maxInsts uint64, results []Result) (*Evaluation, error) {
	ev := &Evaluation{MaxInsts: maxInsts, Warmup: warmup, Models: Models()}
	ws := Workloads()
	if len(results) != len(ws)*len(ev.Models) {
		return nil, fmt.Errorf("fxa: NewEvaluation: %d results, want %d (%d workloads x %d models)",
			len(results), len(ws)*len(ev.Models), len(ws), len(ev.Models))
	}
	for wi, w := range ws {
		row := BenchResult{
			Workload: w,
			Res:      make(map[string]Result, len(ev.Models)),
			Energy:   make(map[string]EnergyBreakdown, len(ev.Models)),
		}
		for mi, m := range ev.Models {
			res := results[wi*len(ev.Models)+mi]
			row.Res[m.Name] = res
			row.Energy[m.Name] = EnergyOf(m, res)
		}
		ev.Rows = append(ev.Rows, row)
	}
	return ev, nil
}

// Group selects a benchmark-group slice of the evaluation.
type Group int

const (
	GroupINT Group = iota
	GroupFP
	GroupALL
)

// String returns the paper's group label.
func (g Group) String() string {
	switch g {
	case GroupINT:
		return "INT"
	case GroupFP:
		return "FP"
	default:
		return "ALL"
	}
}

func (g Group) match(w Workload) bool {
	switch g {
	case GroupINT:
		return !w.FP
	case GroupFP:
		return w.FP
	default:
		return true
	}
}

// geomean returns the geometric mean of f over the group's rows.
func (ev *Evaluation) geomean(g Group, f func(BenchResult) float64) float64 {
	logSum, n := 0.0, 0
	for _, r := range ev.Rows {
		if !g.match(r.Workload) {
			continue
		}
		v := f(r)
		if v <= 0 {
			continue
		}
		logSum += math.Log(v)
		n++
	}
	if n == 0 {
		return 0
	}
	return math.Exp(logSum / float64(n))
}

// RelIPC returns a workload's IPC on model relative to BIG (Figure 7).
func (r BenchResult) RelIPC(model string) float64 {
	bigRes := r.Res["BIG"]
	big := bigRes.Counters.IPC()
	if big == 0 {
		return 0
	}
	mres := r.Res[model]
	return mres.Counters.IPC() / big
}

// GeomeanRelIPC returns the group geometric-mean IPC relative to BIG
// (the mean(INT)/mean(FP)/mean bars of Figure 7).
func (ev *Evaluation) GeomeanRelIPC(model string, g Group) float64 {
	return ev.geomean(g, func(r BenchResult) float64 { return r.RelIPC(model) })
}

// MeanEnergyByComponent returns each model's per-component energy,
// averaged (arithmetic, per-instruction) across all workloads and
// normalized so BIG's total is 1 (Figure 8a).
func (ev *Evaluation) MeanEnergyByComponent() map[string][energy.NumComponents]float64 {
	sums := make(map[string][energy.NumComponents]float64)
	for _, m := range ev.Models {
		var acc [energy.NumComponents]float64
		for _, r := range ev.Rows {
			e := r.Energy[m.Name]
			insts := float64(r.Res[m.Name].Counters.Committed)
			for c := 0; c < int(energy.NumComponents); c++ {
				acc[c] += (e.Dynamic[c] + e.Static[c]) / insts
			}
		}
		for c := range acc {
			acc[c] /= float64(len(ev.Rows))
		}
		sums[m.Name] = acc
	}
	// Normalize to BIG's total.
	var bigTotal float64
	for _, v := range sums["BIG"] {
		bigTotal += v
	}
	if bigTotal > 0 {
		for name, arr := range sums {
			for c := range arr {
				arr[c] /= bigTotal
			}
			sums[name] = arr
		}
	}
	return sums
}

// FUEnergySplit is one bar of Figure 8b: FU + bypass-network energy split
// into IXU/OXU × static/dynamic, normalized to BIG's total.
type FUEnergySplit struct {
	OXUDynamic float64
	OXUStatic  float64
	IXUDynamic float64
	IXUStatic  float64
}

// Total sums the four parts.
func (f FUEnergySplit) Total() float64 {
	return f.OXUDynamic + f.OXUStatic + f.IXUDynamic + f.IXUStatic
}

// MeanFUEnergy returns the Figure 8b bars.
func (ev *Evaluation) MeanFUEnergy() map[string]FUEnergySplit {
	out := make(map[string]FUEnergySplit)
	for _, m := range ev.Models {
		var s FUEnergySplit
		for _, r := range ev.Rows {
			e := r.Energy[m.Name]
			insts := float64(r.Res[m.Name].Counters.Committed)
			s.OXUDynamic += e.Dynamic[energy.FUs] / insts
			s.OXUStatic += e.Static[energy.FUs] / insts
			s.IXUDynamic += e.Dynamic[energy.IXU] / insts
			s.IXUStatic += e.Static[energy.IXU] / insts
		}
		n := float64(len(ev.Rows))
		s.OXUDynamic /= n
		s.OXUStatic /= n
		s.IXUDynamic /= n
		s.IXUStatic /= n
		out[m.Name] = s
	}
	big := out["BIG"].Total()
	if big > 0 {
		for name, s := range out {
			s.OXUDynamic /= big
			s.OXUStatic /= big
			s.IXUDynamic /= big
			s.IXUStatic /= big
			out[name] = s
		}
	}
	return out
}

// EnergyRatio returns model's mean per-instruction energy of one component
// relative to BIG's same component (e.g. the 14 % IQ / 77 % LSQ claims of
// Section VI-D).
func (ev *Evaluation) EnergyRatio(model string, c Component) float64 {
	var m, b float64
	for _, r := range ev.Rows {
		em, eb := r.Energy[model], r.Energy["BIG"]
		im := float64(r.Res[model].Counters.Committed)
		ib := float64(r.Res["BIG"].Counters.Committed)
		m += (em.Dynamic[c] + em.Static[c]) / im
		b += (eb.Dynamic[c] + eb.Static[c]) / ib
	}
	if b == 0 {
		return 0
	}
	return m / b
}

// TotalEnergyRatio returns model's mean per-instruction whole-core energy
// relative to BIG.
func (ev *Evaluation) TotalEnergyRatio(model string) float64 {
	var m, b float64
	for _, r := range ev.Rows {
		em, eb := r.Energy[model], r.Energy["BIG"]
		m += em.Total() / float64(r.Res[model].Counters.Committed)
		b += eb.Total() / float64(r.Res["BIG"].Counters.Committed)
	}
	if b == 0 {
		return 0
	}
	return m / b
}

// PER returns the performance/energy ratio (the inverse of the
// energy-delay product) of model relative to BIG for a group (Figure 10).
// Per workload: PER_rel = (IPC_m / IPC_BIG) × (E_BIG / E_m) with energies
// per instruction; group value is the geometric mean.
func (ev *Evaluation) PER(model string, g Group) float64 {
	return ev.geomean(g, func(r BenchResult) float64 {
		ipcRatio := r.RelIPC(model)
		emb, ebb := r.Energy[model], r.Energy["BIG"]
		em := emb.Total() / float64(r.Res[model].Counters.Committed)
		eb := ebb.Total() / float64(r.Res["BIG"].Counters.Committed)
		if em == 0 {
			return 0
		}
		return ipcRatio * eb / em
	})
}

// GeomeanIXURate returns the group geometric-mean fraction of committed
// instructions executed in the IXU (Figure 12 at the default depth).
func (ev *Evaluation) GeomeanIXURate(model string, g Group) float64 {
	return ev.geomean(g, func(r BenchResult) float64 {
		res := r.Res[model]
		return res.Counters.IXURate()
	})
}

// ReadyAtEntryRate returns the fraction of committed instructions that
// were category (a) — ready at IXU entry (Section IV-A: 5.5 % on average).
func (ev *Evaluation) ReadyAtEntryRate(model string) float64 {
	var ready, committed float64
	for _, r := range ev.Rows {
		ready += float64(r.Res[model].Counters.IXUReadyAtEntry)
		committed += float64(r.Res[model].Counters.Committed)
	}
	if committed == 0 {
		return 0
	}
	return ready / committed
}

// ModelNames returns the evaluated model names in paper order.
func (ev *Evaluation) ModelNames() []string {
	names := make([]string, len(ev.Models))
	for i, m := range ev.Models {
		names[i] = m.Name
	}
	return names
}

// RowByName returns the named workload's results.
func (ev *Evaluation) RowByName(name string) (BenchResult, error) {
	for _, r := range ev.Rows {
		if r.Workload.Name == name {
			return r, nil
		}
	}
	return BenchResult{}, fmt.Errorf("fxa: no evaluation row for %q", name)
}
