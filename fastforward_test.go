package fxa

// Fast-forward differential suite: the emulator's block-stepping fast
// path (emu.FFFast, the Machine.Run default) must be bit-identical to the
// one-Step-per-instruction reference path (emu.FFStep) on every compiled
// test kernel and every synthetic SPEC proxy — registers, memory, PC,
// halt state and instruction count. internal/emu has the same contract on
// hand-written corner-case kernels (fast_test.go); this suite runs it
// over the full workload surface the simulator actually ships.

import (
	"reflect"
	"testing"

	"fxa/internal/asm"
	"fxa/internal/emu"
)

// ffDiffInsts is the per-run budget. Large enough for every proxy to be
// deep in its steady-state loop and for every kernel to cross page
// boundaries and predecode several pages.
const ffDiffInsts = 40_000

// runFFBoth executes prog under both fast-forward modes and compares the
// complete architectural outcome.
func runFFBoth(t *testing.T, name string, prog *asm.Program) {
	t.Helper()
	fast, slow := emu.New(prog), emu.New(prog)
	fast.FF, slow.FF = emu.FFFast, emu.FFStep
	nf, ef := fast.Run(ffDiffInsts)
	ns, es := slow.Run(ffDiffInsts)
	if ef != nil || es != nil {
		t.Fatalf("%s: run errors: fast %v, step %v", name, ef, es)
	}
	if nf != ns || fast.InstCount != slow.InstCount {
		t.Fatalf("%s: executed fast %d (total %d), step %d (total %d)",
			name, nf, fast.InstCount, ns, slow.InstCount)
	}
	if fast.PC != slow.PC || fast.Halt != slow.Halt {
		t.Fatalf("%s: control state differs: PC %#x/%#x halt %v/%v",
			name, fast.PC, slow.PC, fast.Halt, slow.Halt)
	}
	if fast.R != slow.R {
		t.Errorf("%s: integer register file differs", name)
	}
	if fast.F != slow.F {
		t.Errorf("%s: FP register file differs", name)
	}
	if addr, differs := fast.Mem.Diff(slow.Mem); differs {
		t.Errorf("%s: memory differs at %#x: fast %#x, step %#x",
			name, addr, fast.Mem.Load8(addr), slow.Mem.Load8(addr))
	}
}

func TestFastForwardDifferentialKernels(t *testing.T) {
	for _, path := range testKernels(t) {
		name, prog := compileKernel(t, path)
		t.Run(name, func(t *testing.T) { runFFBoth(t, name, prog) })
	}
}

func TestFastForwardDifferentialProxies(t *testing.T) {
	for _, w := range Workloads() {
		w := w
		t.Run(w.Name, func(t *testing.T) {
			prog, err := w.Build()
			if err != nil {
				t.Fatal(err)
			}
			runFFBoth(t, w.Name, prog)
		})
	}
}

// TestRunWarmModeInvariance: a warmed timing run must produce identical
// results whichever fast-forward engine performed the warmup — the
// measurement window enters at the same architectural state either way.
func TestRunWarmModeInvariance(t *testing.T) {
	w, err := WorkloadByName("hmmer")
	if err != nil {
		t.Fatal(err)
	}
	old := emu.DefaultFFMode()
	defer emu.SetDefaultFFMode(old)

	SetFFMode(FFFast)
	fast, err := RunWarm(HalfFX(), w, 30_000, 10_000)
	if err != nil {
		t.Fatal(err)
	}
	SetFFMode(FFStep)
	slow, err := RunWarm(HalfFX(), w, 30_000, 10_000)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(fast, slow) {
		t.Fatalf("warmed run differs between fast-forward modes:\nfast: %+v\nstep: %+v", fast, slow)
	}
}
