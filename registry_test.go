package fxa

// Registry-driven model enumeration for the cross-cutting suites. The
// golden, interval-invariant, differential and skip-differential tests
// iterate allKindModels instead of hard-coding a model list, so a newly
// registered core kind (engine.Register from a package init) is covered
// by every harness the moment fxa.go blank-imports it — satellite 2 of
// the stage-library PR.

import (
	"testing"

	"fxa/internal/config"
	"fxa/internal/engine"
)

// allKindModels asserts the kind registry and the model catalog agree —
// every defined kind is registered, every registered kind has at least
// one named model, every model's kind is constructible — and returns the
// full model set for suite iteration.
func allKindModels(t testing.TB) []Model {
	t.Helper()
	registered := map[config.CoreKind]bool{}
	for _, k := range engine.Kinds() {
		registered[k] = true
	}
	for _, k := range config.Kinds() {
		if !registered[k] {
			t.Fatalf("core kind %v defined in config but not registered with the engine layer", k)
		}
	}
	models := AllModels()
	byKind := map[config.CoreKind]int{}
	for _, m := range models {
		if !engine.Registered(m.Kind) {
			t.Fatalf("model %s has unregistered kind %v", m.Name, m.Kind)
		}
		byKind[m.Kind]++
	}
	for _, k := range engine.Kinds() {
		if byKind[k] == 0 {
			t.Fatalf("registered core kind %v has no named model in AllModels", k)
		}
	}
	return models
}

// TestRegistryCoversAllKinds pins the registry/catalog agreement on its
// own, so a violation fails loudly even when the big suites are filtered
// out.
func TestRegistryCoversAllKinds(t *testing.T) {
	models := allKindModels(t)
	if len(models) < len(Models()) {
		t.Fatalf("AllModels returned %d models, fewer than the paper's %d", len(models), len(Models()))
	}
}

// TestUnknownKindRejected pins satellite 1: a model with an undefined
// CoreKind must fail validation (and thus construction) with an error
// naming the known kinds.
func TestUnknownKindRejected(t *testing.T) {
	m := Little()
	m.Kind = config.CoreKind(97)
	if err := m.Validate(); err == nil {
		t.Fatal("Validate accepted an unknown core kind")
	}
	if _, err := RunTrace(m, nil); err == nil {
		t.Fatal("RunTrace accepted an unknown core kind")
	}
}
