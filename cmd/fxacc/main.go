// Command fxacc compiles FXK kernel-language source (see internal/minic)
// to assembly or runs it directly on a processor model.
//
// Usage:
//
//	fxacc [-S] [-run] [-model HALF+FX] [-n max] file.fxk
//
//	-S      print the generated assembly
//	-run    compile and simulate on -model, printing IPC and statistics
//	-n      dynamic instruction limit for -run (0 = to completion)
package main

import (
	"flag"
	"fmt"
	"os"

	"fxa"
	"fxa/internal/emu"
	"fxa/internal/minic"
)

func main() {
	emitAsm := flag.Bool("S", false, "print generated assembly")
	run := flag.Bool("run", false, "simulate the compiled program")
	model := flag.String("model", "HALF+FX", "processor model for -run")
	n := flag.Uint64("n", 0, "dynamic instruction limit for -run (0 = run to halt)")
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: fxacc [-S] [-run] [-model M] [-n N] file.fxk")
		os.Exit(2)
	}
	src, err := os.ReadFile(flag.Arg(0))
	if err != nil {
		fatal(err)
	}
	text, err := minic.CompileToAsm(string(src))
	if err != nil {
		fatal(err)
	}
	if *emitAsm {
		fmt.Print(text)
	}
	if !*run {
		if !*emitAsm {
			fmt.Println("compiled OK (use -S to print assembly, -run to simulate)")
		}
		return
	}
	prog, err := minic.Compile(string(src))
	if err != nil {
		fatal(err)
	}
	m, err := fxa.ModelByName(*model)
	if err != nil {
		fatal(err)
	}
	res, err := fxa.RunTrace(m, emu.NewStream(emu.New(prog), *n))
	if err != nil {
		fatal(err)
	}
	c := &res.Counters
	fmt.Printf("%s: %d instructions, %d cycles, IPC %.3f", m.Name, c.Committed, c.Cycles, c.IPC())
	if m.FX {
		fmt.Printf(", %.0f%% in IXU", 100*c.IXURate())
	}
	fmt.Println()
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "fxacc:", err)
	os.Exit(1)
}
