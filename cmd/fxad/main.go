// Command fxad serves FXA simulations over HTTP: a long-lived daemon
// that accepts evaluation-cell jobs, runs them on a bounded worker pool
// with per-tenant weighted fairness, and streams schema-versioned
// interval metrics and results back as NDJSON. All tenants share one
// content-addressed result cache, so a cell any client has ever run is
// a cache hit for every later client, and identical cells submitted
// concurrently collapse onto a single simulation.
//
// Usage:
//
//	fxad [-addr host:port] [-j workers] [-cachedir dir | -nocache]
//	     [-queue cap] [-retain n] [-drain timeout]
//	     [-weights tenant=w,tenant=w,...]
//	fxad -version
//
// The API (see internal/serve):
//
//	POST   /v1/jobs      submit a job; 202 + {"id": ...}, 429 when full
//	GET    /v1/jobs/{id} NDJSON event stream (replays on re-attach)
//	DELETE /v1/jobs/{id} cancel a queued or in-flight job
//	GET    /v1/stats     queue, cache, and per-tenant counters
//	GET    /healthz      liveness + build version
//
// On SIGINT/SIGTERM the daemon stops accepting jobs, drains in-flight
// work for up to -drain, then aborts whatever remains and exits 0.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"path/filepath"
	"runtime/debug"
	"strconv"
	"strings"
	"syscall"
	"time"

	"fxa/internal/serve"
	"fxa/internal/sweep"
)

// version is stamped via -ldflags "-X main.version=..."; when absent we
// fall back to the VCS revision baked into the build info.
var version = ""

func buildVersion() string {
	if version != "" {
		return version
	}
	if bi, ok := debug.ReadBuildInfo(); ok {
		rev, dirty := "", ""
		for _, s := range bi.Settings {
			switch s.Key {
			case "vcs.revision":
				rev = s.Value
			case "vcs.modified":
				if s.Value == "true" {
					dirty = "-dirty"
				}
			}
		}
		if rev != "" {
			if len(rev) > 12 {
				rev = rev[:12]
			}
			return rev + dirty
		}
		if bi.Main.Version != "" && bi.Main.Version != "(devel)" {
			return bi.Main.Version
		}
	}
	return "devel"
}

// parseWeights parses "a=3,b=1" into a tenant-weight map.
func parseWeights(s string) (map[string]int, error) {
	if s == "" {
		return nil, nil
	}
	weights := make(map[string]int)
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		name, val, ok := strings.Cut(part, "=")
		if !ok {
			return nil, fmt.Errorf("fxad: -weights entry %q is not tenant=weight", part)
		}
		w, err := strconv.Atoi(val)
		if err != nil || w < 1 {
			return nil, fmt.Errorf("fxad: -weights entry %q needs a positive integer weight", part)
		}
		weights[strings.TrimSpace(name)] = w
	}
	return weights, nil
}

func defaultCacheDir() string {
	if base, err := os.UserCacheDir(); err == nil {
		return filepath.Join(base, "fxad")
	}
	return ".fxad-cache"
}

func main() {
	addr := flag.String("addr", "127.0.0.1:7790", "listen address")
	workers := flag.Int("j", 0, "simulation worker-pool size (0 = GOMAXPROCS)")
	cacheDir := flag.String("cachedir", "", "shared result cache directory (default $XDG_CACHE_HOME/fxad)")
	noCache := flag.Bool("nocache", false, "run without the shared result cache")
	queueCap := flag.Int("queue", serve.DefaultQueueCap, "queued-job cap before submissions get 429")
	retain := flag.Int("retain", serve.DefaultRetainJobs, "completed jobs retained for re-attach")
	drain := flag.Duration("drain", 30*time.Second, "graceful-shutdown drain timeout for in-flight jobs")
	weightsFlag := flag.String("weights", "", "per-tenant fair-share weights, e.g. batch=1,interactive=3 (unlisted tenants get weight 1)")
	showVersion := flag.Bool("version", false, "print the build version and exit")
	flag.Parse()

	if *showVersion {
		fmt.Printf("fxad %s\n", buildVersion())
		return
	}
	if err := run(*addr, *workers, *cacheDir, *noCache, *queueCap, *retain, *drain, *weightsFlag); err != nil {
		fmt.Fprintf(os.Stderr, "fxad: %v\n", err)
		os.Exit(1)
	}
}

func run(addr string, workers int, cacheDir string, noCache bool, queueCap, retain int, drain time.Duration, weightsFlag string) error {
	weights, err := parseWeights(weightsFlag)
	if err != nil {
		return err
	}

	var cache *sweep.Cache
	if !noCache {
		dir := cacheDir
		if dir == "" {
			dir = defaultCacheDir()
		}
		cache, err = sweep.OpenCache(dir)
		if err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "fxad: result cache at %s\n", dir)
	}

	srv := serve.New(serve.Config{
		Workers:       workers,
		QueueCap:      queueCap,
		Cache:         cache,
		TenantWeights: weights,
		RetainJobs:    retain,
		Version:       buildVersion(),
	})

	ln, err := net.Listen("tcp", addr)
	if err != nil {
		srv.Close()
		return err
	}
	// The smoke script and tests parse this line to find the bound port
	// (addr may be ":0").
	fmt.Printf("fxad: listening on %s\n", ln.Addr())

	httpSrv := &http.Server{Handler: srv.Handler()}
	serveErr := make(chan error, 1)
	go func() { serveErr <- httpSrv.Serve(ln) }()

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGINT, syscall.SIGTERM)
	select {
	case err := <-serveErr:
		srv.Close()
		return err
	case s := <-sig:
		fmt.Fprintf(os.Stderr, "fxad: %v: draining (up to %v)\n", s, drain)
	}

	// Stop accepting first, then drain simulations, then close the
	// listener: streams stay attached while their jobs finish.
	ctx, cancel := context.WithTimeout(context.Background(), drain)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		fmt.Fprintf(os.Stderr, "fxad: drain incomplete: %v\n", err)
	}
	if err := httpSrv.Shutdown(ctx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		return err
	}
	fmt.Fprintln(os.Stderr, "fxad: bye")
	return nil
}
