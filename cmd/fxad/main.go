// Command fxad serves FXA simulations over HTTP: a long-lived daemon
// that accepts evaluation-cell jobs, runs them on a bounded worker pool
// with per-tenant weighted fairness, and streams schema-versioned
// interval metrics and results back as NDJSON. All tenants share one
// content-addressed result cache, so a cell any client has ever run is
// a cache hit for every later client, and identical cells submitted
// concurrently collapse onto a single simulation.
//
// Usage:
//
//	fxad [-addr host:port] [-j workers] [-cachedir dir | -nocache]
//	     [-queue cap] [-retain n] [-drain timeout]
//	     [-weights tenant=w,tenant=w,...]
//	     [-self url] [-peers url,url,... | -peersfile path]
//	fxad -route url,url,... | -routefile path
//	     [-addr host:port] [-retain n]
//	     [-probe-interval d] [-probe-timeout d] [-probe-fails k]
//	fxad -version
//
// The second form runs the daemon as a *router* over a set of worker
// shards (the first form): jobs are placed by consistent-hashing their
// content address onto the shard ring, event streams are proxied through
// a replayable log, shard health is probed continuously, and jobs on a
// shard that dies mid-flight are resubmitted to the next live shard —
// transparently, because reruns are bit-identical and usually free via
// the shards' federated caches (-peers/-peersfile on the shards).
//
// The API (see internal/serve):
//
//	POST   /v1/jobs        submit a job; 202 + {"id": ...}, 429 when full
//	GET    /v1/jobs/{id}   NDJSON event stream (replays on re-attach)
//	DELETE /v1/jobs/{id}   cancel a queued or in-flight job
//	GET    /v1/stats       queue, cache, and per-tenant counters
//	                       (router: shard membership and resubmissions)
//	GET    /v1/cache/{key} raw cached result by content address (shards only)
//	GET    /healthz        liveness + build version
//
// On SIGINT/SIGTERM the daemon stops accepting jobs, drains in-flight
// work for up to -drain, then aborts whatever remains and exits 0.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"path/filepath"
	"runtime/debug"
	"strconv"
	"strings"
	"syscall"
	"time"

	"fxa/internal/serve"
	"fxa/internal/sweep"
)

// version is stamped via -ldflags "-X main.version=..."; when absent we
// fall back to the VCS revision baked into the build info.
var version = ""

func buildVersion() string {
	if version != "" {
		return version
	}
	if bi, ok := debug.ReadBuildInfo(); ok {
		rev, dirty := "", ""
		for _, s := range bi.Settings {
			switch s.Key {
			case "vcs.revision":
				rev = s.Value
			case "vcs.modified":
				if s.Value == "true" {
					dirty = "-dirty"
				}
			}
		}
		if rev != "" {
			if len(rev) > 12 {
				rev = rev[:12]
			}
			return rev + dirty
		}
		if bi.Main.Version != "" && bi.Main.Version != "(devel)" {
			return bi.Main.Version
		}
	}
	return "devel"
}

// parseWeights parses "a=3,b=1" into a tenant-weight map.
func parseWeights(s string) (map[string]int, error) {
	if s == "" {
		return nil, nil
	}
	weights := make(map[string]int)
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		name, val, ok := strings.Cut(part, "=")
		if !ok {
			return nil, fmt.Errorf("fxad: -weights entry %q is not tenant=weight", part)
		}
		w, err := strconv.Atoi(val)
		if err != nil || w < 1 {
			return nil, fmt.Errorf("fxad: -weights entry %q needs a positive integer weight", part)
		}
		weights[strings.TrimSpace(name)] = w
	}
	return weights, nil
}

// parseURLList splits a comma-separated URL list, dropping empties.
func parseURLList(s string) []string {
	var out []string
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part != "" {
			out = append(out, part)
		}
	}
	return out
}

// readURLFile reads one URL per line (blank lines and #-comments
// skipped). Used for both -routefile and -peersfile, so a cluster whose
// shards bind ephemeral ports can be described by a file written after
// the shards report their addresses.
func readURLFile(path string) ([]string, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var out []string
	for _, line := range strings.Split(string(b), "\n") {
		line = strings.TrimSpace(line)
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		out = append(out, line)
	}
	return out, nil
}

func defaultCacheDir() string {
	if base, err := os.UserCacheDir(); err == nil {
		return filepath.Join(base, "fxad")
	}
	return ".fxad-cache"
}

func main() {
	addr := flag.String("addr", "127.0.0.1:7790", "listen address")
	workers := flag.Int("j", 0, "simulation worker-pool size (0 = GOMAXPROCS)")
	cacheDir := flag.String("cachedir", "", "shared result cache directory (default $XDG_CACHE_HOME/fxad)")
	noCache := flag.Bool("nocache", false, "run without the shared result cache")
	queueCap := flag.Int("queue", serve.DefaultQueueCap, "queued-job cap before submissions get 429")
	retain := flag.Int("retain", serve.DefaultRetainJobs, "completed jobs retained for re-attach")
	drain := flag.Duration("drain", 30*time.Second, "graceful-shutdown drain timeout for in-flight jobs")
	weightsFlag := flag.String("weights", "", "per-tenant fair-share weights, e.g. batch=1,interactive=3 (unlisted tenants get weight 1)")
	selfURL := flag.String("self", "", "this shard's advertised base URL, skipped in peer lookups (default http://<bound addr>)")
	peersFlag := flag.String("peers", "", "peer shard base URLs for cache federation, comma-separated")
	peersFile := flag.String("peersfile", "", "file of peer shard base URLs (one per line, re-read per lookup)")
	routeFlag := flag.String("route", "", "run as a router over these worker shard base URLs, comma-separated")
	routeFile := flag.String("routefile", "", "run as a router over the shard base URLs in this file (one per line)")
	probeInterval := flag.Duration("probe-interval", serve.DefaultProbeInterval, "router: shard health-probe interval")
	probeTimeout := flag.Duration("probe-timeout", serve.DefaultProbeTimeout, "router: per-probe timeout")
	probeFails := flag.Int("probe-fails", serve.DefaultProbeFailAfter, "router: consecutive probe failures before a shard is marked down")
	showVersion := flag.Bool("version", false, "print the build version and exit")
	flag.Parse()

	if *showVersion {
		fmt.Printf("fxad %s\n", buildVersion())
		return
	}

	var err error
	switch {
	case *routeFlag != "" && *routeFile != "":
		err = fmt.Errorf("-route and -routefile are mutually exclusive")
	case *routeFlag != "" || *routeFile != "":
		shards := parseURLList(*routeFlag)
		if *routeFile != "" {
			shards, err = readURLFile(*routeFile)
		}
		if err == nil {
			err = runRouter(*addr, shards, *retain, *drain, serve.ProbeConfig{
				Interval:  *probeInterval,
				Timeout:   *probeTimeout,
				FailAfter: *probeFails,
			})
		}
	case *peersFlag != "" && *peersFile != "":
		err = fmt.Errorf("-peers and -peersfile are mutually exclusive")
	default:
		err = run(*addr, *workers, *cacheDir, *noCache, *queueCap, *retain, *drain,
			*weightsFlag, *selfURL, *peersFlag, *peersFile)
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "fxad: %v\n", err)
		os.Exit(1)
	}
}

func run(addr string, workers int, cacheDir string, noCache bool, queueCap, retain int, drain time.Duration, weightsFlag, selfURL, peersFlag, peersFile string) error {
	weights, err := parseWeights(weightsFlag)
	if err != nil {
		return err
	}

	var cache *sweep.Cache
	if !noCache {
		dir := cacheDir
		if dir == "" {
			dir = defaultCacheDir()
		}
		cache, err = sweep.OpenCache(dir)
		if err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "fxad: result cache at %s\n", dir)
	}

	srv := serve.New(serve.Config{
		Workers:       workers,
		QueueCap:      queueCap,
		Cache:         cache,
		TenantWeights: weights,
		RetainJobs:    retain,
		Version:       buildVersion(),
	})

	ln, err := net.Listen("tcp", addr)
	if err != nil {
		srv.Close()
		return err
	}
	// The smoke scripts and tests parse this line to find the bound port
	// (addr may be ":0").
	fmt.Printf("fxad: listening on %s\n", ln.Addr())

	// Cache federation: with peers configured, a local cache miss asks
	// each peer's /v1/cache/{key} before simulating. Installed after the
	// listener exists so self defaults to the real bound address.
	if cache != nil && (peersFlag != "" || peersFile != "") {
		self := selfURL
		if self == "" {
			self = "http://" + ln.Addr().String()
		}
		var peersFn func() []string
		if peersFile != "" {
			// Re-read per lookup: a cluster of ephemeral-port shards can
			// write the peer list after all shards have reported their
			// addresses, and membership edits need no restarts.
			peersFn = func() []string {
				urls, err := readURLFile(peersFile)
				if err != nil {
					return nil
				}
				return urls
			}
			fmt.Fprintf(os.Stderr, "fxad: cache federation with peers from %s (self %s)\n", peersFile, self)
		} else {
			static := parseURLList(peersFlag)
			peersFn = func() []string { return static }
			fmt.Fprintf(os.Stderr, "fxad: cache federation with %d peers (self %s)\n", len(static), self)
		}
		cache.SetFallback(serve.CacheFallback(self, peersFn, nil, 0))
	}

	httpSrv := &http.Server{Handler: srv.Handler()}
	serveErr := make(chan error, 1)
	go func() { serveErr <- httpSrv.Serve(ln) }()

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGINT, syscall.SIGTERM)
	select {
	case err := <-serveErr:
		srv.Close()
		return err
	case s := <-sig:
		fmt.Fprintf(os.Stderr, "fxad: %v: draining (up to %v)\n", s, drain)
	}

	// Stop accepting first, then drain simulations, then close the
	// listener: streams stay attached while their jobs finish.
	ctx, cancel := context.WithTimeout(context.Background(), drain)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		fmt.Fprintf(os.Stderr, "fxad: drain incomplete: %v\n", err)
	}
	if err := httpSrv.Shutdown(ctx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		return err
	}
	fmt.Fprintln(os.Stderr, "fxad: bye")
	return nil
}

// runRouter serves router mode: no worker pool, no cache — placement,
// proxying, health, failover (see internal/serve/router.go).
func runRouter(addr string, shards []string, retain int, drain time.Duration, probe serve.ProbeConfig) error {
	rt, err := serve.NewRouter(serve.RouterConfig{
		Shards:     shards,
		Probe:      probe,
		RetainJobs: retain,
		Version:    buildVersion(),
	})
	if err != nil {
		return err
	}

	ln, err := net.Listen("tcp", addr)
	if err != nil {
		rt.Close()
		return err
	}
	fmt.Printf("fxad: listening on %s\n", ln.Addr())
	fmt.Fprintf(os.Stderr, "fxad: routing over %d shards\n", len(shards))

	httpSrv := &http.Server{Handler: rt.Handler()}
	serveErr := make(chan error, 1)
	go func() { serveErr <- httpSrv.Serve(ln) }()

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGINT, syscall.SIGTERM)
	select {
	case err := <-serveErr:
		rt.Close()
		return err
	case s := <-sig:
		fmt.Fprintf(os.Stderr, "fxad: %v: draining (up to %v)\n", s, drain)
	}

	ctx, cancel := context.WithTimeout(context.Background(), drain)
	defer cancel()
	if err := rt.Shutdown(ctx); err != nil {
		fmt.Fprintf(os.Stderr, "fxad: drain incomplete: %v\n", err)
	}
	if err := httpSrv.Shutdown(ctx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		return err
	}
	fmt.Fprintln(os.Stderr, "fxad: bye")
	return nil
}
