// Command fxabench regenerates the paper's evaluation: every table and
// figure of Section VI, printed as aligned text tables.
//
// Usage:
//
//	fxabench [-n insts] [-warmup insts] [-ffmode fast|step]
//	         [-j workers] [-cache] [-cachedir dir]
//	         [-serve-url http://host:port] [-tenant name]
//	         [-experiment all|table1|table2|fig7|fig8a|fig8b|fig9|fig10|fig11|fig12|fig13|headline]
//	         [-format text|csv|markdown] [-q]
//	         [-cpuprofile file] [-memprofile file]
//	fxabench -intervals N [-workload W] [-model M] [-n insts] [-warmup insts]
//	         [-format text|csv|json]
//	fxabench -sample intervals:window:skip[:warmup] [-workload W] [-model M]
//	         [-ci 0.95] [-j workers] [-format text|csv|markdown|json]
//	fxabench -perfgate [-update-baseline] [-threshold 1.10] [-count 5]
//	         [-suite all|core|emu|sampling] [-baselinedir .]
//	         [-benchout file] [-benchtime d] [-format text|csv|markdown]
//
// With -perfgate, fxabench becomes the performance-regression gate
// (DESIGN.md §8.5): it runs the repository's benchmark suites as `go
// test -bench` subprocesses with -count repetitions (plus one discarded
// warm-up repetition), compares the measured distributions against the
// schema-versioned baselines BENCH_core.json / BENCH_emu.json /
// BENCH_sampling.json, and exits non-zero with a regression table when
// any metric is both statistically significant (one-sided Mann-Whitney
// U, p < 0.05) and worse than -threshold (noisy runners widen the
// tolerance instead of flaking). -update-baseline re-records the
// baselines — the deliberate refresh after an intentional performance
// change. -benchout preserves the raw `go test -bench` output (the CI
// artifact); -threshold must lie in (1, 10].
//
// With -intervals N, fxabench switches to single-run mode: it simulates
// one workload on one model with the engine layer's interval-metrics
// collection enabled and prints the per-interval time series (IPC, IXU
// rate, branch/L1D/L2 MPKI, ROB/IQ occupancy) roughly every N committed
// instructions. The interval counter deltas partition the run exactly —
// the text rendering's totals line reconciles them against the final
// counters, and -format json emits the full schema-versioned Result.
//
// With -sample, fxabench runs one workload on one model with SMARTS-style
// systematic sampling (internal/sampling, DESIGN.md §8.7) instead of one
// long detailed run. The schedule is a colon-separated
// intervals:window:skip[:warmup] tuple — number of detailed windows,
// measured instructions per window, functional fast-forward before each
// window, and an optional detailed-warm-up prefix per window that
// simulates in full detail but is excluded from measurement. Counts
// accept decimal k/M/G suffixes, including fractional ones that resolve
// to whole instructions ("-sample 10:1M:8.9M:100k" is ten 1M-instruction
// windows, each after an 8.9M skip and a 100k warm-up — the paper's
// skip-then-measure methodology at 100M total span). The output is a
// per-metric table of estimate ± Student-t confidence
// interval (IPC, branch MPKI, energy/inst) at the -ci level, with the
// analytic bottleneck IPC cross-check in the footer; -format json emits
// the full schema-versioned sampling Summary.
//
// With -warmup, the main sweep fast-forwards each (workload, model) cell
// functionally (emulator only, no timing) before its detailed window — the
// paper's skip-then-measure methodology (Section VI-A) at reduced scale.
// The sweep summary line then reports the fast-forward volume and
// throughput ("ff X Minst at Y Minst/s"). -ffmode selects the emulator's
// fast-forward engine: "fast" (default) uses the predecoded basic-block
// interpreter, "step" forces the single-instruction reference path — the
// two are bit-identical, so "step" exists for cross-checking and
// debugging (see DESIGN.md §8.3).
//
// With -cpuprofile the whole invocation is profiled; with -memprofile an
// allocation profile ("allocs", cumulative since process start) is written
// at exit. Both feed `go tool pprof` and exist to keep the simulator's
// hot-loop allocation discipline observable (see DESIGN.md §8.2). Sweep
// progress lines additionally report allocs/Kinst. An existing profile
// (or -benchout) file is never silently overwritten: the previous file
// is rotated to <file>.prev first, so back-to-back profiling runs always
// keep one generation to diff against.
//
// The main sweep (figures 7, 8a, 8b, 10 and the headline numbers) runs
// every SPEC CPU 2006 proxy on every model once and derives all views from
// that single evaluation. Figures 11-13 run their own design-space sweeps.
//
// All sweeps execute through the internal/sweep orchestration engine on a
// bounded worker pool (-j, default GOMAXPROCS); results are deterministic
// for any worker count. With -cache, finished runs are stored in a
// content-addressed on-disk cache (-cachedir, default
// $XDG_CACHE_HOME/fxabench) so repeated invocations with unchanged
// configurations skip simulation entirely.
//
// With -serve-url, the main evaluation sweep (fig7/fig8a/fig8b/fig10/
// headline) runs on a remote fxad daemon instead of locally: each
// (workload, model) cell becomes one job, interval metrics stream back
// live, and the daemon's shared cache serves hits across every client.
// Remote results are bit-identical to a local run of the same
// configuration (differential-test-enforced). The sensitivity sweeps
// (fig11-fig13) vary private model knobs the daemon does not expose and
// always run locally.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math"
	"os"
	"path/filepath"
	"runtime"
	"runtime/pprof"
	"strconv"
	"strings"

	"fxa"
	"fxa/internal/energy"
	"fxa/internal/engine"
	"fxa/internal/report"
	"fxa/internal/serve"
)

// exitHooks run before any process exit (normal return or fatal), because
// os.Exit skips deferred calls; profile writers register here.
var exitHooks []func()

func runExitHooks() {
	for i := len(exitHooks) - 1; i >= 0; i-- {
		exitHooks[i]()
	}
	exitHooks = nil
}

// renderable is anything the report package can emit in all formats.
type renderable interface {
	Render(w io.Writer)
	CSV(w io.Writer)
	Markdown(w io.Writer)
}

// validExperiments lists the accepted -experiment values in display order.
var validExperiments = []string{
	"all", "table1", "table2", "fig7", "fig8a", "fig8b", "fig9",
	"fig10", "fig11", "fig12", "fig13", "headline",
}

// validFormats lists the accepted -format values ("json" additionally
// works for the single-run -intervals mode).
var validFormats = []string{"text", "csv", "markdown"}

// printModels renders the full model catalog (-list-models): every named
// model across all core kinds, with its registry status. The first five
// are the paper's evaluation set; the rest are usable through -model and
// the public API but excluded from the figure sweeps.
func printModels(w io.Writer) {
	t := &report.Table{
		Title:   "models",
		Headers: []string{"model", "kind", "fetch", "issue", "FX", "registered"},
		Footer: []string{
			"the first five are the paper's Section VI evaluation set (fxa.Models);",
			"all rows resolve via -model and fxa.ModelByName (fxa.AllModels)",
		},
	}
	for _, m := range fxa.AllModels() {
		fxMark := ""
		if m.FX {
			fxMark = "yes"
		}
		t.AddRow(m.Name, m.Kind.String(),
			strconv.Itoa(m.FetchWidth), strconv.Itoa(m.IssueWidth),
			fxMark, fmt.Sprintf("%v", engine.Registered(m.Kind)))
	}
	t.Render(w)
}

func main() {
	n := flag.Uint64("n", 300_000, "dynamic instructions per benchmark run")
	warmup := flag.Uint64("warmup", 0, "functional fast-forward instructions before each main-sweep run")
	ffmode := flag.String("ffmode", "fast", "emulator fast-forward engine: fast (predecoded blocks) or step (reference)")
	exp := flag.String("experiment", "all", "which experiment to run ("+strings.Join(validExperiments, ", ")+")")
	quiet := flag.Bool("q", false, "suppress progress output")
	format := flag.String("format", "text", "output format: "+strings.Join(validFormats, ", "))
	workers := flag.Int("j", 0, "simulation worker-pool size (0 = GOMAXPROCS)")
	useCache := flag.Bool("cache", false, "cache simulation results on disk and reuse them")
	cacheDir := flag.String("cachedir", "", "result cache directory (implies -cache; default $XDG_CACHE_HOME/fxabench)")
	serveURL := flag.String("serve-url", "", "run the main evaluation sweep on a remote fxad daemon at this base URL")
	tenant := flag.String("tenant", "", "tenant name stamped on remote submissions (with -serve-url)")
	cpuprofile := flag.String("cpuprofile", "", "write a CPU profile of the whole invocation to this file")
	memprofile := flag.String("memprofile", "", "write an allocation profile to this file at exit")
	intervals := flag.Uint64("intervals", 0, "single-run mode: collect interval metrics every N committed instructions (requires -workload/-model)")
	sampleSpec := flag.String("sample", "", "sampled-run mode: intervals:window:skip[:warmup] schedule (k/M/G suffixes; uses -workload/-model)")
	ciLevel := flag.Float64("ci", 0.95, "two-sided confidence level for -sample's intervals, in (0,1)")
	workloadName := flag.String("workload", "libquantum", "workload for -intervals/-sample mode")
	modelName := flag.String("model", "HALF+FX", "processor model for -intervals/-sample mode")
	gateMode := flag.Bool("perfgate", false, "performance-regression gate mode: run the benchmark suites and compare against the checked-in baselines")
	gateUpdate := flag.Bool("update-baseline", false, "perfgate: re-record the baselines instead of gating")
	gateThreshold := flag.Float64("threshold", 1.10, "perfgate: practical regression threshold as a worseness ratio, in (1, 10]")
	gateCount := flag.Int("count", 5, "perfgate: measured repetitions per benchmark")
	gateSuite := flag.String("suite", "all", "perfgate: which suite to run (all, core, emu, sampling)")
	gateBaselineDir := flag.String("baselinedir", ".", "perfgate: directory holding the BENCH_*.json baselines")
	gateBenchOut := flag.String("benchout", "", "perfgate: tee the raw `go test -bench` output to this file (rotated, never clobbered)")
	gateBenchTime := flag.String("benchtime", "", "perfgate: -benchtime passed through to go test (default: go's)")
	listModels := flag.Bool("list-models", false, "print every named model with its core kind and exit")
	flag.Parse()

	if *listModels {
		printModels(os.Stdout)
		return
	}

	if !contains(validExperiments, *exp) {
		fatal(fmt.Errorf("unknown experiment %q (valid: %s)", *exp, strings.Join(validExperiments, ", ")))
	}
	if !contains(validFormats, *format) && !(*format == "json" && (*intervals > 0 || *sampleSpec != "")) {
		fatal(fmt.Errorf("unknown format %q (valid: %s; json with -intervals or -sample)", *format, strings.Join(validFormats, ", ")))
	}
	if *sampleSpec != "" && *intervals > 0 {
		fatal(fmt.Errorf("-sample and -intervals are distinct single-run modes; pick one"))
	}
	if *ciLevel <= 0 || *ciLevel >= 1 {
		fatal(fmt.Errorf("-ci %v out of range: confidence level must be in (0,1)", *ciLevel))
	}
	if *tenant != "" && *serveURL == "" {
		fatal(fmt.Errorf("-tenant requires -serve-url"))
	}
	set := make(map[string]bool)
	flag.Visit(func(f *flag.Flag) { set[f.Name] = true })
	if set["ci"] && *sampleSpec == "" {
		fatal(fmt.Errorf("-ci requires -sample"))
	}
	if !*gateMode {
		// The perfgate knobs mean nothing outside -perfgate; reject
		// them instead of silently ignoring a mistyped gate run.
		for _, name := range []string{"update-baseline", "threshold", "count", "suite", "baselinedir", "benchout", "benchtime"} {
			if set[name] {
				fatal(fmt.Errorf("-%s requires -perfgate", name))
			}
		}
	} else if *gateThreshold <= 1 || *gateThreshold > 10 {
		fatal(fmt.Errorf("-threshold %v out of range: must be in (1, 10] (it is a worseness ratio; 1.10 gates 10%% regressions)", *gateThreshold))
	} else if *gateCount < 2 && !*gateUpdate {
		fatal(fmt.Errorf("-count %d too small: the significance test needs at least 2 repetitions (default 5)", *gateCount))
	}
	switch *ffmode {
	case "fast":
		fxa.SetFFMode(fxa.FFFast)
	case "step":
		fxa.SetFFMode(fxa.FFStep)
	default:
		fatal(fmt.Errorf("unknown ffmode %q (valid: fast, step)", *ffmode))
	}

	if *cpuprofile != "" {
		f, err := createNoClobber(*cpuprofile)
		if err != nil {
			fatal(err)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fatal(err)
		}
		exitHooks = append(exitHooks, func() {
			pprof.StopCPUProfile()
			f.Close()
		})
	}
	if *memprofile != "" {
		path := *memprofile
		exitHooks = append(exitHooks, func() {
			f, err := createNoClobber(path)
			if err != nil {
				fmt.Fprintln(os.Stderr, "fxabench: memprofile:", err)
				return
			}
			defer f.Close()
			runtime.GC() // settle live-heap numbers before snapshotting
			if err := pprof.Lookup("allocs").WriteTo(f, 0); err != nil {
				fmt.Fprintln(os.Stderr, "fxabench: memprofile:", err)
			}
		})
	}
	defer runExitHooks()

	if *gateMode {
		failed, err := runPerfgate(context.Background(), perfgateConfig{
			update:      *gateUpdate,
			threshold:   *gateThreshold,
			count:       *gateCount,
			suite:       *gateSuite,
			baselineDir: *gateBaselineDir,
			benchOut:    *gateBenchOut,
			benchTime:   *gateBenchTime,
			format:      *format,
			quiet:       *quiet,
		})
		if err != nil {
			fatal(err)
		}
		if failed {
			runExitHooks()
			os.Exit(1)
		}
		return
	}

	if *intervals > 0 {
		if err := runIntervals(*modelName, *workloadName, *n, *warmup, *intervals, *format); err != nil {
			fatal(err)
		}
		return
	}

	if *sampleSpec != "" {
		cfg, err := parseSampleSpec(*sampleSpec)
		if err != nil {
			fatal(err)
		}
		cfg.CILevel = *ciLevel
		cfg.Workers = *workers
		if err := runSample(*modelName, *workloadName, cfg, *format, *quiet); err != nil {
			fatal(err)
		}
		return
	}

	opts := fxa.SweepOptions{Workers: *workers}
	if *useCache || *cacheDir != "" {
		dir := *cacheDir
		if dir == "" {
			dir = defaultCacheDir()
		}
		cache, err := fxa.OpenSweepCache(dir)
		if err != nil {
			fatal(err)
		}
		opts.Cache = cache
	}

	show := func(r renderable) {
		switch *format {
		case "csv":
			r.CSV(os.Stdout)
		case "markdown":
			r.Markdown(os.Stdout)
		default:
			r.Render(os.Stdout)
		}
		fmt.Println()
	}

	// progressOpts derives per-sweep engine options whose OnEvent
	// callback rewrites one stderr status line. The engine delivers
	// events from a single goroutine, so this is the only writer and
	// "\r"-updates never interleave, regardless of -j.
	progressOpts := func(stage string) fxa.SweepOptions {
		o := opts
		if *quiet {
			return o
		}
		o.OnEvent = func(e fxa.SweepEvent) {
			if e.Kind != fxa.SweepEventDone {
				return
			}
			suffix := ""
			if e.CacheHit {
				suffix = " (cached)"
			}
			fmt.Fprintf(os.Stderr, "\r%-78s",
				fmt.Sprintf("%s [%d/%d] %s%s", stage, e.Done, e.Total, e.Label, suffix))
		}
		return o
	}
	done := func(stage string, stats fxa.SweepStats) {
		if *quiet {
			return
		}
		fmt.Fprintf(os.Stderr, "\r%-78s\r", "")
		fmt.Fprintf(os.Stderr, "%s: %s\n", stage, stats)
	}
	localNote := func(stage string) {
		if *serveURL != "" && !*quiet {
			fmt.Fprintf(os.Stderr, "fxabench: %s runs locally; -serve-url covers only the main evaluation sweep\n", stage)
		}
	}

	wants := func(name string) bool { return *exp == "all" || *exp == name }
	ctx := context.Background()

	if wants("table1") {
		show(fxa.Table1())
	}
	if wants("table2") {
		show(fxa.Table2())
	}

	needSweep := false
	for _, e := range []string{"fig7", "fig8a", "fig8b", "fig10", "headline"} {
		if wants(e) {
			needSweep = true
		}
	}
	var ev *fxa.Evaluation
	if needSweep {
		if *serveURL != "" {
			var err error
			ev, err = runRemoteSweep(ctx, *serveURL, *tenant, *warmup, *n, *workers, *quiet)
			if err != nil {
				fatal(err)
			}
		} else {
			var err error
			var stats fxa.SweepStats
			ev, stats, err = fxa.RunEvaluationSweepWarm(ctx, *warmup, *n, progressOpts("main sweep"))
			if err != nil {
				fatal(err)
			}
			done("main sweep", stats)
		}
	}
	if wants("fig7") {
		show(ev.Figure7Table())
	}
	if wants("fig8a") {
		show(ev.Figure8aTable())
	}
	if wants("fig8b") {
		show(ev.Figure8bTable())
	}
	if wants("fig9") {
		whole, detail := fxa.Figure9Tables()
		show(whole)
		show(detail)
	}
	if wants("fig10") {
		show(ev.Figure10Table())
	}
	if wants("fig11") {
		localNote("figure 11 sweep")
		s, stats, err := fxa.RunFigure11Sweep(ctx, *n, progressOpts("figure 11 sweep"))
		if err != nil {
			fatal(err)
		}
		done("figure 11 sweep", stats)
		show(s)
	}
	if wants("fig12") || wants("fig13") {
		localNote("figure 12/13 sweep")
		f12, f13, stats, err := fxa.RunFigure1213Sweep(ctx, *n, progressOpts("figure 12/13 sweep"))
		if err != nil {
			fatal(err)
		}
		done("figure 12/13 sweep", stats)
		if wants("fig12") {
			show(f12)
		}
		if wants("fig13") {
			show(f13)
		}
	}
	if wants("headline") {
		printHeadline(ev)
	}
}

// runRemoteSweep runs the main evaluation matrix on a remote fxad
// daemon and reassembles the Evaluation locally. Results are
// bit-identical to a local sweep of the same -warmup/-n.
func runRemoteSweep(ctx context.Context, baseURL, tenant string, warmup, n uint64, workers int, quiet bool) (*fxa.Evaluation, error) {
	client := &serve.Client{BaseURL: baseURL, Tenant: tenant}
	if _, err := client.Healthz(ctx); err != nil {
		return nil, fmt.Errorf("cannot reach fxad at %s: %w", baseURL, err)
	}
	onDone := func(done, total int, label string, cached bool) {
		if quiet {
			return
		}
		suffix := ""
		if cached {
			suffix = " (cached)"
		}
		fmt.Fprintf(os.Stderr, "\r%-78s",
			fmt.Sprintf("remote sweep [%d/%d] %s%s", done, total, label, suffix))
	}
	ev, hits, err := serve.RemoteEvaluation(ctx, client, warmup, n, workers, onDone)
	if err != nil {
		return nil, err
	}
	if !quiet {
		total := len(fxa.Workloads()) * len(fxa.Models())
		fmt.Fprintf(os.Stderr, "\r%-78s\r", "")
		fmt.Fprintf(os.Stderr, "remote sweep: %d jobs, %d served from the daemon's shared cache\n", total, hits)
	}
	return ev, nil
}

// defaultCacheDir picks the per-user cache location, falling back to a
// local directory when the platform offers none.
func defaultCacheDir() string {
	if base, err := os.UserCacheDir(); err == nil {
		return filepath.Join(base, "fxabench")
	}
	return ".fxabench-cache"
}

func contains(list []string, s string) bool {
	for _, v := range list {
		if v == s {
			return true
		}
	}
	return false
}

// printHeadline reports the paper's summary numbers (Sections VI-C/D/G,
// IV-A) next to the measured values.
func printHeadline(ev *fxa.Evaluation) {
	fmt.Println("Headline numbers (paper -> measured):")
	row := func(what string, paper float64, measured float64) {
		fmt.Printf("  %-52s paper %6.3f   measured %6.3f\n", what, paper, measured)
	}
	row("HALF+FX IPC vs BIG (geomean ALL)", 1.057, ev.GeomeanRelIPC("HALF+FX", fxa.GroupALL))
	row("HALF+FX IPC vs BIG (geomean INT)", 1.074, ev.GeomeanRelIPC("HALF+FX", fxa.GroupINT))
	row("HALF+FX IPC vs BIG (geomean FP)", 1.045, ev.GeomeanRelIPC("HALF+FX", fxa.GroupFP))
	if r, err := ev.RowByName("libquantum"); err == nil {
		row("libquantum HALF+FX IPC vs BIG (max in paper)", 1.67, r.RelIPC("HALF+FX"))
	}
	row("LITTLE IPC vs BIG", 0.60, ev.GeomeanRelIPC("LITTLE", fxa.GroupALL))
	row("HALF IPC vs BIG", 0.84, ev.GeomeanRelIPC("HALF", fxa.GroupALL))
	row("HALF+FX total energy vs BIG", 0.83, ev.TotalEnergyRatio("HALF+FX"))
	row("BIG+FX total energy vs BIG", 0.913, ev.TotalEnergyRatio("BIG+FX"))
	row("LITTLE total energy vs BIG", 0.60, ev.TotalEnergyRatio("LITTLE"))
	row("HALF+FX IQ energy vs BIG", 0.14, ev.EnergyRatio("HALF+FX", energy.IQ))
	row("HALF+FX LSQ energy vs BIG", 0.77, ev.EnergyRatio("HALF+FX", energy.LSQ))
	row("HALF+FX PER vs BIG", 1.25, ev.PER("HALF+FX", fxa.GroupALL))
	perLittle := ev.PER("LITTLE", fxa.GroupALL)
	if perLittle > 0 {
		row("HALF+FX PER vs LITTLE", 1.27, ev.PER("HALF+FX", fxa.GroupALL)/perLittle)
	}
	row("IXU execution rate (ALL)", 0.54, ev.GeomeanIXURate("HALF+FX", fxa.GroupALL))
	row("IXU execution rate (INT)", 0.61, ev.GeomeanIXURate("HALF+FX", fxa.GroupINT))
	row("IXU execution rate (FP)", 0.51, ev.GeomeanIXURate("HALF+FX", fxa.GroupFP))
	row("category (a): ready at IXU entry", 0.055, ev.ReadyAtEntryRate("HALF+FX"))
	bigA, fxA := fxa.AreaOf(fxa.Big()), fxa.AreaOf(fxa.HalfFX())
	row("HALF+FX area vs BIG", 1.027, fxA.Total()/bigA.Total())
}

func fatal(err error) {
	runExitHooks()
	fmt.Fprintln(os.Stderr, "fxabench:", err)
	os.Exit(1)
}

// parseSampleSpec parses the -sample schedule: a colon-separated
// intervals:window:skip[:warmup] tuple of instruction counts.
func parseSampleSpec(s string) (fxa.SamplingConfig, error) {
	var cfg fxa.SamplingConfig
	parts := strings.Split(s, ":")
	if len(parts) < 3 || len(parts) > 4 {
		return cfg, fmt.Errorf("-sample wants intervals:window:skip[:warmup], got %q", s)
	}
	field := func(name, v string) (uint64, error) {
		n, err := parseInsts(v)
		if err != nil {
			return 0, fmt.Errorf("-sample %s %q: %w", name, v, err)
		}
		return n, nil
	}
	iv, err := field("intervals", parts[0])
	if err != nil {
		return cfg, err
	}
	if iv == 0 || iv > 1<<30 {
		return cfg, fmt.Errorf("-sample intervals %q out of range", parts[0])
	}
	cfg.Intervals = int(iv)
	if cfg.IntervalInsts, err = field("window", parts[1]); err != nil {
		return cfg, err
	}
	if cfg.IntervalInsts == 0 {
		return cfg, fmt.Errorf("-sample window must be positive")
	}
	if cfg.SkipInsts, err = field("skip", parts[2]); err != nil {
		return cfg, err
	}
	if len(parts) == 4 {
		if cfg.WarmupInsts, err = field("warmup", parts[3]); err != nil {
			return cfg, err
		}
	}
	return cfg, nil
}

// parseInsts parses an instruction count with an optional decimal k/M/G
// suffix. Fractional values are accepted when they resolve to a whole
// instruction count ("7.9M" = 7_900_000), so paper-style schedules read
// naturally on the command line.
func parseInsts(s string) (uint64, error) {
	mult := uint64(1)
	switch {
	case strings.HasSuffix(s, "k"), strings.HasSuffix(s, "K"):
		mult, s = 1_000, s[:len(s)-1]
	case strings.HasSuffix(s, "M"):
		mult, s = 1_000_000, s[:len(s)-1]
	case strings.HasSuffix(s, "G"):
		mult, s = 1_000_000_000, s[:len(s)-1]
	}
	if mult > 1 && strings.Contains(s, ".") {
		f, err := strconv.ParseFloat(s, 64)
		if err != nil || f < 0 {
			return 0, fmt.Errorf("not a count")
		}
		v := f * float64(mult)
		if v != math.Trunc(v) || v > float64(1<<62) {
			return 0, fmt.Errorf("fractional count must resolve to whole instructions")
		}
		return uint64(v), nil
	}
	v, err := strconv.ParseUint(s, 10, 64)
	if err != nil {
		return 0, fmt.Errorf("not a count")
	}
	if mult > 1 && v > math.MaxUint64/mult {
		return 0, fmt.Errorf("count overflows")
	}
	return v * mult, nil
}

// runSample is the single-run -sample mode: sample one workload on one
// model per the parsed schedule and emit the per-metric estimate±CI table
// (internal/report), or the full schema-versioned Summary with -format
// json. The stderr summary line reports the run economics — detailed
// versus fast-forwarded volume — since fast-forward dominates sampled
// wall clock.
func runSample(modelName, workloadName string, cfg fxa.SamplingConfig, format string, quiet bool) error {
	m, err := fxa.ModelByName(modelName)
	if err != nil {
		return err
	}
	w, err := fxa.WorkloadByName(workloadName)
	if err != nil {
		return err
	}
	sum, err := fxa.SampleContext(context.Background(), m, w, cfg)
	if err != nil {
		return fmt.Errorf("sampling %s on %s: %w", w.Name, m.Name, err)
	}
	if !quiet {
		fmt.Fprintf(os.Stderr, "sampled run: %s\n", sum.Sweep)
	}
	switch format {
	case "json":
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		return enc.Encode(&sum)
	case "csv":
		report.SamplingCSV(os.Stdout, &sum)
	case "markdown":
		report.SamplingMarkdown(os.Stdout, &sum)
	default:
		report.Sampling(os.Stdout, &sum)
	}
	return nil
}

// runIntervals is the single-run -intervals mode: simulate one workload
// on one model with interval-metrics collection and emit the series as
// text, csv or json. The text and csv renderings come from
// internal/report; json emits the full schema-versioned Result.
func runIntervals(modelName, workloadName string, n, warmup, every uint64, format string) error {
	m, err := fxa.ModelByName(modelName)
	if err != nil {
		return err
	}
	w, err := fxa.WorkloadByName(workloadName)
	if err != nil {
		return err
	}
	trace, err := w.NewTraceWarm(warmup, n)
	if err != nil {
		return err
	}
	res, err := fxa.RunTraceIntervals(context.Background(), m, trace, every)
	if err != nil {
		return fmt.Errorf("%s on %s: %w", m.Name, w.Name, err)
	}
	if terr := trace.Err(); terr != nil {
		return fmt.Errorf("%s trace: %w", w.Name, terr)
	}
	switch format {
	case "json":
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		return enc.Encode(&res)
	case "csv":
		report.IntervalsCSV(os.Stdout, &res)
	default:
		report.Intervals(os.Stdout, &res)
	}
	return nil
}
