// Command fxabench regenerates the paper's evaluation: every table and
// figure of Section VI, printed as aligned text tables.
//
// Usage:
//
//	fxabench [-n insts] [-experiment all|table1|table2|fig7|fig8a|fig8b|fig9|fig10|fig11|fig12|fig13|headline] [-format text|csv|markdown] [-q]
//
// The main sweep (figures 7, 8a, 8b, 10 and the headline numbers) runs
// every SPEC CPU 2006 proxy on every model once and derives all views from
// that single evaluation. Figures 11-13 run their own design-space sweeps.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"fxa"
	"fxa/internal/energy"
)

// renderable is anything the report package can emit in all formats.
type renderable interface {
	Render(w io.Writer)
	CSV(w io.Writer)
	Markdown(w io.Writer)
}

func main() {
	n := flag.Uint64("n", 300_000, "dynamic instructions per benchmark run")
	exp := flag.String("experiment", "all", "which experiment to run (all, table1, table2, fig7, fig8a, fig8b, fig9, fig10, fig11, fig12, fig13, headline)")
	quiet := flag.Bool("q", false, "suppress progress output")
	format := flag.String("format", "text", "output format: text, csv, or markdown")
	flag.Parse()

	show := func(r renderable) {
		switch *format {
		case "csv":
			r.CSV(os.Stdout)
		case "markdown":
			r.Markdown(os.Stdout)
		default:
			r.Render(os.Stdout)
		}
		fmt.Println()
	}

	progress := func(stage string) func(...string) {
		if *quiet {
			return func(...string) {}
		}
		return func(parts ...string) {
			fmt.Fprintf(os.Stderr, "\r%-60s", stage+": "+strings.Join(parts, " on "))
		}
	}
	done := func() {
		if !*quiet {
			fmt.Fprintf(os.Stderr, "\r%-60s\r", "")
		}
	}

	wants := func(name string) bool { return *exp == "all" || *exp == name }

	if wants("table1") {
		show(fxa.Table1())
	}
	if wants("table2") {
		show(fxa.Table2())
	}

	needSweep := false
	for _, e := range []string{"fig7", "fig8a", "fig8b", "fig10", "headline"} {
		if wants(e) {
			needSweep = true
		}
	}
	var ev *fxa.Evaluation
	if needSweep {
		p := progress("main sweep")
		var err error
		ev, err = fxa.RunEvaluation(*n, func(w, m string) { p(w, m) })
		done()
		if err != nil {
			fatal(err)
		}
	}
	if wants("fig7") {
		show(ev.Figure7Table())
	}
	if wants("fig8a") {
		show(ev.Figure8aTable())
	}
	if wants("fig8b") {
		show(ev.Figure8bTable())
	}
	if wants("fig9") {
		whole, detail := fxa.Figure9Tables()
		show(whole)
		show(detail)
	}
	if wants("fig10") {
		show(ev.Figure10Table())
	}
	if wants("fig11") {
		p := progress("figure 11 sweep")
		s, err := fxa.RunFigure11(*n, func(l string) { p(l) })
		done()
		if err != nil {
			fatal(err)
		}
		show(s)
	}
	if wants("fig12") || wants("fig13") {
		p := progress("figure 12/13 sweep")
		f12, f13, err := fxa.RunFigure1213(*n, func(l string) { p(l) })
		done()
		if err != nil {
			fatal(err)
		}
		if wants("fig12") {
			show(f12)
		}
		if wants("fig13") {
			show(f13)
		}
	}
	if wants("headline") {
		printHeadline(ev)
	}
}

// printHeadline reports the paper's summary numbers (Sections VI-C/D/G,
// IV-A) next to the measured values.
func printHeadline(ev *fxa.Evaluation) {
	fmt.Println("Headline numbers (paper -> measured):")
	row := func(what string, paper float64, measured float64) {
		fmt.Printf("  %-52s paper %6.3f   measured %6.3f\n", what, paper, measured)
	}
	row("HALF+FX IPC vs BIG (geomean ALL)", 1.057, ev.GeomeanRelIPC("HALF+FX", fxa.GroupALL))
	row("HALF+FX IPC vs BIG (geomean INT)", 1.074, ev.GeomeanRelIPC("HALF+FX", fxa.GroupINT))
	row("HALF+FX IPC vs BIG (geomean FP)", 1.045, ev.GeomeanRelIPC("HALF+FX", fxa.GroupFP))
	if r, err := ev.RowByName("libquantum"); err == nil {
		row("libquantum HALF+FX IPC vs BIG (max in paper)", 1.67, r.RelIPC("HALF+FX"))
	}
	row("LITTLE IPC vs BIG", 0.60, ev.GeomeanRelIPC("LITTLE", fxa.GroupALL))
	row("HALF IPC vs BIG", 0.84, ev.GeomeanRelIPC("HALF", fxa.GroupALL))
	row("HALF+FX total energy vs BIG", 0.83, ev.TotalEnergyRatio("HALF+FX"))
	row("BIG+FX total energy vs BIG", 0.913, ev.TotalEnergyRatio("BIG+FX"))
	row("LITTLE total energy vs BIG", 0.60, ev.TotalEnergyRatio("LITTLE"))
	row("HALF+FX IQ energy vs BIG", 0.14, ev.EnergyRatio("HALF+FX", energy.IQ))
	row("HALF+FX LSQ energy vs BIG", 0.77, ev.EnergyRatio("HALF+FX", energy.LSQ))
	row("HALF+FX PER vs BIG", 1.25, ev.PER("HALF+FX", fxa.GroupALL))
	perLittle := ev.PER("LITTLE", fxa.GroupALL)
	if perLittle > 0 {
		row("HALF+FX PER vs LITTLE", 1.27, ev.PER("HALF+FX", fxa.GroupALL)/perLittle)
	}
	row("IXU execution rate (ALL)", 0.54, ev.GeomeanIXURate("HALF+FX", fxa.GroupALL))
	row("IXU execution rate (INT)", 0.61, ev.GeomeanIXURate("HALF+FX", fxa.GroupINT))
	row("IXU execution rate (FP)", 0.51, ev.GeomeanIXURate("HALF+FX", fxa.GroupFP))
	row("category (a): ready at IXU entry", 0.055, ev.ReadyAtEntryRate("HALF+FX"))
	bigA, fxA := fxa.AreaOf(fxa.Big()), fxa.AreaOf(fxa.HalfFX())
	row("HALF+FX area vs BIG", 1.027, fxA.Total()/bigA.Total())
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "fxabench:", err)
	os.Exit(1)
}
