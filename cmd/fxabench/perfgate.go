package main

// The -perfgate mode: run the gated benchmark suites with repetitions,
// compare them against the checked-in baselines (BENCH_core.json,
// BENCH_emu.json, BENCH_sampling.json) with the statistics of
// internal/perfgate, and exit non-zero on any statistically significant
// regression beyond threshold. With -update-baseline it re-records the
// baselines instead (the deliberate refresh path after an intentional
// performance change — see EXPERIMENTS.md).

import (
	"context"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"

	"fxa/internal/perfgate"
)

// perfgateConfig carries the perfgate-mode flag values.
type perfgateConfig struct {
	update      bool    // -update-baseline
	threshold   float64 // -threshold
	count       int     // -count
	suite       string  // -suite: all|core|emu|sampling
	baselineDir string  // -baselinedir
	benchOut    string  // -benchout: raw go test output artifact
	benchTime   string  // -benchtime passthrough
	format      string  // -format: text|csv|markdown
	quiet       bool    // -q
}

// runPerfgate executes the gate (or the baseline refresh). It returns
// gateFailed=true when at least one suite regressed — the caller turns
// that into a non-zero exit after all suites have reported, so a run
// with regressions in two suites shows both tables.
func runPerfgate(ctx context.Context, cfg perfgateConfig) (gateFailed bool, err error) {
	var specs []perfgate.SuiteSpec
	if cfg.suite == "all" {
		specs = perfgate.Suites
	} else {
		spec, err := perfgate.SuiteByName(cfg.suite)
		if err != nil {
			return false, err
		}
		specs = []perfgate.SuiteSpec{spec}
	}

	runner := &perfgate.Runner{
		Dir:       ".",
		Count:     cfg.count,
		BenchTime: cfg.benchTime,
	}
	if !cfg.quiet {
		runner.Log = os.Stderr
	}
	if cfg.benchOut != "" {
		f, err := createNoClobber(cfg.benchOut)
		if err != nil {
			return false, err
		}
		defer f.Close()
		runner.RawOut = f
	}

	var failures []string
	for _, spec := range specs {
		suite, err := runner.Run(ctx, spec)
		if err != nil {
			return false, err
		}
		path := filepath.Join(cfg.baselineDir, spec.Baseline)

		if cfg.update {
			suite.Description = fmt.Sprintf(
				"perfgate baseline for the %s suite (%s in %s): per-benchmark sample vectors over %d repetitions (first warm-up repetition discarded). Refresh with `make bench-gate-update` after an intentional performance change; gated by `make bench-gate` (DESIGN.md §8.5).",
				spec.Name, spec.Pattern, spec.Pkg, runner.Count)
			if err := suite.Save(path); err != nil {
				return false, fmt.Errorf("suite %s: %w", spec.Name, err)
			}
			if !cfg.quiet {
				fmt.Fprintf(os.Stderr, "perfgate: wrote %s (%d benchmarks)\n", path, len(suite.Benchmarks))
			}
			continue
		}

		base, err := perfgate.LoadBaseline(path)
		if err != nil {
			return false, err
		}
		g := perfgate.Compare(base, suite, perfgate.Options{Threshold: cfg.threshold})
		renderGate(os.Stdout, g, cfg.format)
		fmt.Println(g.Summary())
		fmt.Println()
		for _, c := range g.Regressions() {
			failures = append(failures, fmt.Sprintf("%s: %s %s (ratio %.3f, p %.3f, tol %.2f)",
				g.SuiteName, c.Bench, c.Unit, c.Ratio, c.P, c.Tolerance))
		}
	}

	if len(failures) > 0 {
		fmt.Fprintf(os.Stderr, "perfgate: %d regression(s):\n  %s\n",
			len(failures), strings.Join(failures, "\n  "))
		return true, nil
	}
	return false, nil
}

// renderGate emits the comparison table in the requested -format.
func renderGate(w io.Writer, g *perfgate.GateResult, format string) {
	t := g.Table()
	switch format {
	case "csv":
		t.CSV(w)
	case "markdown":
		t.Markdown(w)
	default:
		t.Render(w)
	}
}

// createNoClobber creates path for writing. If the file already exists
// it is rotated to path+".prev" first instead of being silently
// overwritten — repeated -cpuprofile/-memprofile/-benchout runs keep
// exactly one previous generation around for comparison.
func createNoClobber(path string) (*os.File, error) {
	if _, err := os.Stat(path); err == nil {
		prev := path + ".prev"
		if err := os.Rename(path, prev); err != nil {
			return nil, fmt.Errorf("%s exists and rotating it failed: %w", path, err)
		}
		fmt.Fprintf(os.Stderr, "fxabench: %s existed, rotated to %s\n", path, prev)
	}
	return os.Create(path)
}
