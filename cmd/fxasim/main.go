// Command fxasim runs one workload on one processor model and prints the
// detailed statistics of the run: IPC, IXU/OXU split, cache and predictor
// behaviour, and the energy breakdown.
//
// Usage:
//
//	fxasim [-model HALF+FX] [-n 300000] [-asm file.s] [workload]
//
// Either name a built-in SPEC CPU 2006 proxy (fxasim libquantum) or supply
// an assembly file (fxasim -asm prog.s). With no arguments it lists the
// available workloads and models.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"strings"

	"fxa"
	"fxa/internal/asm"
	"fxa/internal/config"
	"fxa/internal/core"
	"fxa/internal/emu"
	"fxa/internal/isa"
	"fxa/internal/pipetrace"
)

func main() {
	model := flag.String("model", "HALF+FX", "processor model (BIG, HALF, LITTLE, BIG+FX, HALF+FX)")
	n := flag.Uint64("n", 300_000, "maximum dynamic instructions (0 = run to halt; only for -asm)")
	asmFile := flag.String("asm", "", "assembly source file to run instead of a built-in workload")
	kanata := flag.String("kanata", "", "write a Kanata pipeline trace (view with Konata) to this file")
	pipeview := flag.Int("pipeview", 0, "print a textual pipeline diagram of the first N instructions")
	flag.Parse()

	m, err := fxa.ModelByName(*model)
	if err != nil {
		fatal(err)
	}

	var stream *emu.Stream
	switch {
	case *asmFile != "":
		src, err := os.ReadFile(*asmFile)
		if err != nil {
			fatal(err)
		}
		prog, err := asm.Assemble(string(src))
		if err != nil {
			fatal(err)
		}
		stream = emu.NewStream(emu.New(prog), *n)
	case flag.NArg() == 1 && strings.HasPrefix(flag.Arg(0), "fxk:"):
		c, err := fxa.CompiledWorkloadByName(strings.TrimPrefix(flag.Arg(0), "fxk:"))
		if err != nil {
			fatal(err)
		}
		stream, err = c.NewTrace(*n)
		if err != nil {
			fatal(err)
		}
	case flag.NArg() == 1:
		w, err := fxa.WorkloadByName(flag.Arg(0))
		if err != nil {
			fatal(err)
		}
		if *n == 0 {
			fatal(fmt.Errorf("built-in workloads run forever; use -n"))
		}
		stream, err = w.NewTrace(*n)
		if err != nil {
			fatal(err)
		}
	default:
		usage()
		return
	}

	var res fxa.Result
	if *pipeview > 0 {
		if m.Kind != config.OutOfOrder {
			fatal(fmt.Errorf("-pipeview requires an out-of-order model"))
		}
		co, err := core.New(m, stream)
		if err != nil {
			fatal(err)
		}
		tx := pipetrace.NewText(*pipeview)
		co.SetProbe(tx)
		res, err = co.Run(context.Background())
		if err != nil {
			fatal(err)
		}
		fmt.Print(tx)
		fmt.Println()
		printResult(m, res)
		return
	}
	if *kanata != "" {
		if m.Kind != config.OutOfOrder {
			fatal(fmt.Errorf("-kanata requires an out-of-order model"))
		}
		f, err := os.Create(*kanata)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		k := pipetrace.NewKanata(f)
		co, err := core.New(m, stream)
		if err != nil {
			fatal(err)
		}
		co.SetProbe(k)
		res, err = co.Run(context.Background())
		if err != nil {
			fatal(err)
		}
		if err := k.Close(); err != nil {
			fatal(err)
		}
		fmt.Printf("wrote Kanata trace to %s\n\n", *kanata)
	} else {
		res, err = fxa.RunTrace(m, stream)
		if err != nil {
			fatal(err)
		}
	}
	printResult(m, res)
}

func usage() {
	fmt.Println("usage: fxasim [-model M] [-n N] (workload | -asm file.s)")
	fmt.Println("\nmodels:")
	for _, m := range fxa.Models() {
		fmt.Printf("  %s\n", m.Name)
	}
	fmt.Println("\nworkloads (SPEC CPU 2006 proxies):")
	for _, w := range fxa.Workloads() {
		group := "INT"
		if w.FP {
			group = "FP"
		}
		fmt.Printf("  %-12s (%s)\n", w.Name, group)
	}
	fmt.Println("\ncompiled FXK kernels (run as fxk:<name>):")
	for _, c := range fxa.CompiledWorkloads() {
		group := "INT"
		if c.FP {
			group = "FP"
		}
		fmt.Printf("  fxk:%-12s (%s)\n", c.Name, group)
	}
}

func printResult(m fxa.Model, res fxa.Result) {
	c := &res.Counters
	fmt.Printf("model           %s\n", m.Name)
	fmt.Printf("committed       %d instructions in %d cycles\n", c.Committed, c.Cycles)
	fmt.Printf("IPC             %.3f\n", c.IPC())
	if m.FX {
		fmt.Printf("IXU executed    %d (%.1f%%), by stage %v\n", c.IXUExec, 100*c.IXURate(), c.IXUExecByStage[:len(m.IXU.StageFUs)])
		fmt.Printf("  ready @entry  %d (category (a))\n", c.IXUReadyAtEntry)
		fmt.Printf("  loads/stores  %d / %d; branches %d\n", c.IXULoadExec, c.IXUStoreExec, c.IXUBranchExec)
		fmt.Printf("OXU executed    %d (IQ dispatches %d, issues %d)\n", c.OXUExec, c.IQDispatch, c.IQIssue)
		fmt.Printf("LSQ omissions   %d LQ-searches, %d LQ-writes\n", c.LQSearchOmitted, c.LQWriteOmitted)
	}
	fmt.Printf("branches        %d, mispredicted %d (MPKI %.2f; resolved IXU %d / OXU %d)\n",
		c.Branches, c.BranchMispredicts, c.MPKI(), c.MispredResolvedIXU, c.MispredResolvedOXU)
	fmt.Printf("mem violations  %d (replays %d)\n", c.MemViolations, c.Replays)
	fmt.Printf("L1I             %.2f%% miss (%d accesses)\n", 100*res.L1I.MissRate(), res.L1I.Accesses())
	fmt.Printf("L1D             %.2f%% miss (%d accesses, %d prefetches)\n", 100*res.L1D.MissRate(), res.L1D.Accesses(), res.L1D.Prefetches)
	fmt.Printf("L2              %.2f%% miss (%d accesses); DRAM %d\n", 100*res.L2.MissRate(), res.L2.Accesses(), res.DRAM)

	fmt.Printf("\ninstruction mix:\n")
	for cls := isa.Class(0); cls < isa.NumClasses; cls++ {
		if n := c.CommittedByClass[cls]; n > 0 {
			fmt.Printf("  %-8s %8d (%.1f%%)\n", cls, n, 100*float64(n)/float64(c.Committed))
		}
	}

	e := fxa.EnergyOf(m, res)
	fmt.Printf("\nenergy (model units; dynamic + static):\n")
	for _, comp := range fxa.Components() {
		if v := e.Of(comp); v > 0 {
			fmt.Printf("  %-8s %12.0f\n", comp, v)
		}
	}
	fmt.Printf("  %-8s %12.0f (%.1f per instruction)\n", "TOTAL", e.Total(), e.Total()/float64(c.Committed))
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "fxasim:", err)
	os.Exit(1)
}
