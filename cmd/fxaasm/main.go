// Command fxaasm assembles a source file into a loadable program image
// and optionally disassembles or executes it on the functional emulator.
//
// Usage:
//
//	fxaasm [-run] [-d] [-n max] file.s
//
//	-d    disassemble the code segments after assembly
//	-run  execute on the functional emulator and dump final register state
//	-n    instruction limit for -run (default 1,000,000)
package main

import (
	"encoding/binary"
	"flag"
	"fmt"
	"os"

	"fxa/internal/asm"
	"fxa/internal/emu"
	"fxa/internal/isa"
)

func main() {
	run := flag.Bool("run", false, "execute on the functional emulator")
	dis := flag.Bool("d", false, "disassemble code segments")
	n := flag.Uint64("n", 1_000_000, "instruction limit for -run")
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: fxaasm [-run] [-d] [-n max] file.s")
		os.Exit(2)
	}
	src, err := os.ReadFile(flag.Arg(0))
	if err != nil {
		fatal(err)
	}
	prog, err := asm.Assemble(string(src))
	if err != nil {
		fatal(err)
	}
	var total int
	for _, seg := range prog.Segments {
		total += len(seg.Data)
	}
	fmt.Printf("entry %#x, %d segment(s), %d bytes\n", prog.Entry, len(prog.Segments), total)
	for _, seg := range prog.Segments {
		fmt.Printf("  segment %#x..%#x (%d bytes)\n", seg.Addr, seg.Addr+uint64(len(seg.Data)), len(seg.Data))
	}

	if *dis {
		for _, seg := range prog.Segments {
			for off := 0; off+4 <= len(seg.Data); off += 4 {
				w := binary.LittleEndian.Uint32(seg.Data[off:])
				in, err := isa.Decode(w)
				if err != nil {
					continue // data, not code
				}
				fmt.Printf("%#08x:  %08x  %s\n", seg.Addr+uint64(off), w, in)
			}
		}
	}

	if *run {
		m := emu.New(prog)
		executed, err := m.Run(*n)
		if err != nil {
			fatal(err)
		}
		status := "halted"
		if !m.Halt {
			status = "limit reached"
		}
		fmt.Printf("\nexecuted %d instructions (%s), PC %#x\n", executed, status, m.PC)
		for i := 0; i < isa.NumIntRegs; i++ {
			if m.R[i] != 0 {
				fmt.Printf("  r%-2d = %d (%#x)\n", i, int64(m.R[i]), m.R[i])
			}
		}
		for i := 0; i < isa.NumFPRegs; i++ {
			if m.F[i] != 0 {
				fmt.Printf("  f%-2d = %g\n", i, m.F[i])
			}
		}
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "fxaasm:", err)
	os.Exit(1)
}
