package fxa

// Interval-metrics invariants, enforced for every model × kernel pair:
//
//  1. The interval series partitions the run exactly — summing every
//     interval's counter and cache-stat deltas reproduces the final
//     Result bit-for-bit, and the tail interval ends at the run's final
//     cycle/instruction position.
//  2. Collection is observation-only: a run driven with intervals
//     enabled produces exactly the same Result (minus the series) as
//     the same run without them.

import (
	"context"
	"reflect"
	"testing"

	"fxa/internal/asm"
	"fxa/internal/emu"
	"fxa/internal/mem"
	"fxa/internal/stats"
)

func addCache(a, b mem.CacheStats) mem.CacheStats {
	return mem.CacheStats{
		Reads:      a.Reads + b.Reads,
		Writes:     a.Writes + b.Writes,
		ReadMiss:   a.ReadMiss + b.ReadMiss,
		WriteMiss:  a.WriteMiss + b.WriteMiss,
		Writebacks: a.Writebacks + b.Writebacks,
		Prefetches: a.Prefetches + b.Prefetches,
	}
}

func TestIntervalInvariant(t *testing.T) {
	for _, path := range testKernels(t) {
		name, prog := compileKernel(t, path)
		for _, m := range allKindModels(t) {
			m := m
			t.Run(name+"/"+m.Name, func(t *testing.T) {
				checkIntervalInvariant(t, m, prog, goldenInsts, 10_000)
			})
		}
	}
}

// TestIntervalInvariantMemBound re-checks both invariants on single-MSHR
// variants of every model with a small interval length: serialized fills
// leave idle spans of hundreds of cycles, so the timing loop's idle jumps
// routinely land past an interval boundary and the boundary bookkeeping
// (end cycle, per-interval deltas) must be cut at identical positions
// regardless.
func TestIntervalInvariantMemBound(t *testing.T) {
	path := testKernels(t)[0]
	name, prog := compileKernel(t, path)
	for _, base := range allKindModels(t) {
		m := base
		m.MSHRs = 1
		t.Run(name+"/"+m.Name+"/mshr1", func(t *testing.T) {
			checkIntervalInvariant(t, m, prog, goldenInsts, 2_000)
		})
	}
}

// checkIntervalInvariant runs prog on m with interval collection and
// asserts both invariants of the suite header.
func checkIntervalInvariant(t *testing.T, m Model, prog *asm.Program, insts, every uint64) {
	t.Helper()
	trace := emu.NewStream(emu.New(prog), insts)
	res, err := RunTraceIntervals(context.Background(), m, trace, every)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Intervals) == 0 {
		t.Fatal("no intervals collected")
	}

	// (1) Partition: deltas sum to the final statistics.
	var sum stats.Counters
	var l1i, l1d, l2 mem.CacheStats
	var dram uint64
	var prevInst, prevCycle uint64
	for i := range res.Intervals {
		iv := &res.Intervals[i]
		if iv.Index != i {
			t.Errorf("interval %d carries index %d", i, iv.Index)
		}
		if iv.EndInst <= prevInst {
			t.Errorf("interval %d: EndInst %d not increasing past %d", i, iv.EndInst, prevInst)
		}
		if iv.EndCycle < prevCycle {
			t.Errorf("interval %d: EndCycle %d went backwards from %d", i, iv.EndCycle, prevCycle)
		}
		prevInst, prevCycle = iv.EndInst, iv.EndCycle
		sum.Add(&iv.Counters)
		l1i = addCache(l1i, iv.L1I)
		l1d = addCache(l1d, iv.L1D)
		l2 = addCache(l2, iv.L2)
		dram += iv.DRAM
	}
	if !reflect.DeepEqual(sum, res.Counters) {
		t.Errorf("summed interval counters differ from the run's final counters:\nsum:   %+v\nfinal: %+v", sum, res.Counters)
	}
	if l1i != res.L1I || l1d != res.L1D || l2 != res.L2 || dram != res.DRAM {
		t.Error("summed interval cache deltas differ from the run's final cache stats")
	}
	last := &res.Intervals[len(res.Intervals)-1]
	if last.EndInst != res.Counters.Committed || last.EndCycle != res.Counters.Cycles {
		t.Errorf("tail interval ends at (cycle %d, inst %d), run at (%d, %d)",
			last.EndCycle, last.EndInst, res.Counters.Cycles, res.Counters.Committed)
	}

	// (2) Observation-only: same run without collection.
	ref, err := RunTrace(m, emu.NewStream(emu.New(prog), insts))
	if err != nil {
		t.Fatal(err)
	}
	bare := res
	bare.Intervals = nil
	if !reflect.DeepEqual(bare, ref) {
		t.Errorf("interval collection perturbed the result:\nwith:    %+v\nwithout: %+v", bare, ref)
	}
}
