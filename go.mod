module fxa

go 1.22
