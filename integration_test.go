package fxa

// End-to-end golden tests: real algorithms written in FXK, compiled with
// the bundled compiler, validated functionally on the emulator, then run
// through every timing model with the cross-model invariants checked. This
// exercises the whole stack the way a downstream user would: language →
// assembler → emulator → timing models → statistics.

import (
	"testing"

	"fxa/internal/emu"
	"fxa/internal/minic"
)

type goldenProgram struct {
	name   string
	src    string
	verify func(t *testing.T, m *emu.Machine)
}

var goldenPrograms = []goldenProgram{
	{
		name: "fibonacci",
		// result (r8) = fib(40) mod 2^64; a/b are r9/r10.
		src: `
var result = 0;
var a = 0;
var b = 1;
for i = 0 .. 40 {
    result = a + b;
    a = b;
    b = result;
}
`,
		verify: func(t *testing.T, m *emu.Machine) {
			// fib sequence: after 40 steps b = fib(41), result = fib(41)
			const fib41 = 165580141
			if got := int64(m.R[8]); got != fib41 {
				t.Errorf("fib result = %d, want %d", got, fib41)
			}
		},
	},
	{
		name: "bubble-sort",
		// sorted flag (r8) = 1, checksum (r9) preserved.
		src: `
var sorted = 0;
var checksum = 0;
var a[64];
var seed = 42;
for i = 0 .. 64 {
    seed = (seed * 1103 + 12289) % 65536;
    a[i] = seed;
    checksum = checksum + seed;
}
for pass = 0 .. 64 {
    for j = 0 .. 63 {
        if a[j] > a[j+1] {
            var tmp; tmp = a[j];
            a[j] = a[j+1];
            a[j+1] = tmp;
        }
    }
}
sorted = 1;
var prev = -1;
var check2 = 0;
for k = 0 .. 64 {
    if a[k] < prev { sorted = 0; }
    prev = a[k];
    check2 = check2 + a[k];
}
if check2 != checksum { sorted = 0; }
`,
		verify: func(t *testing.T, m *emu.Machine) {
			if m.R[8] != 1 {
				t.Error("array not sorted or checksum mismatch")
			}
		},
	},
	{
		name: "matmul",
		// 8x8 integer matrix multiply; trace (r8) of C.
		src: `
var trace = 0;
var a[64];
var b[64];
var c[64];
for i = 0 .. 64 {
    a[i] = i % 7 + 1;
    b[i] = i % 5 + 1;
}
for i = 0 .. 8 {
    for j = 0 .. 8 {
        var acc = 0;
        for k = 0 .. 8 {
            acc = acc + a[i*8+k] * b[k*8+j];
        }
        c[i*8+j] = acc;
    }
}
for d = 0 .. 8 {
    trace = trace + c[d*8+d];
}
`,
		verify: func(t *testing.T, m *emu.Machine) {
			// Reference computed in Go below.
			var a, b [64]int64
			for i := int64(0); i < 64; i++ {
				a[i] = i%7 + 1
				b[i] = i%5 + 1
			}
			var trace int64
			for d := 0; d < 8; d++ {
				var acc int64
				for k := 0; k < 8; k++ {
					acc += a[d*8+k] * b[k*8+d]
				}
				trace += acc
			}
			if got := int64(m.R[8]); got != trace {
				t.Errorf("matmul trace = %d, want %d", got, trace)
			}
		},
	},
	{
		name: "newton-sqrt",
		// Newton iteration for sqrt(2) in floating point; result in f8.
		src: `
fvar x = 1.0;
fvar target = 2.0;
for it = 0 .. 20 {
    x = (x + target / x) / 2.0;
}
var ok = 0;
fvar lo = 1.41421;
fvar hi = 1.41422;
if (x > lo) && (x < hi) { ok = 1; }
`,
		verify: func(t *testing.T, m *emu.Machine) {
			if m.R[8] != 1 { // "ok" is the first integer scalar
				t.Errorf("newton sqrt out of range: f8=%g", m.F[8])
			}
		},
	},
	{
		name: "sieve",
		// Count of primes below 1000 = 168, in r8.
		src: `
var count = 0;
var composite[1000];
for i = 2 .. 1000 {
    if composite[i] == 0 {
        count = count + 1;
        var j; j = i * i;
        while j < 1000 {
            composite[j] = 1;
            j = j + i;
        }
    }
}
`,
		verify: func(t *testing.T, m *emu.Machine) {
			if m.R[8] != 168 {
				t.Errorf("primes below 1000 = %d, want 168", m.R[8])
			}
		},
	},
	{
		name: "collatz",
		// Longest Collatz chain start below 300 is 231 (127 steps).
		src: `
var beststart = 0;
var bestlen = 0;
for n = 1 .. 300 {
    var x; x = n;
    var steps = 0;
    while x != 1 {
        if (x & 1) == 1 {
            x = 3 * x + 1;
        } else {
            x = x / 2;
        }
        steps = steps + 1;
    }
    if steps > bestlen {
        bestlen = steps;
        beststart = n;
    }
}
`,
		verify: func(t *testing.T, m *emu.Machine) {
			// Reference computed in Go.
			bestStart, bestLen := 0, 0
			for n := 1; n < 300; n++ {
				x, steps := n, 0
				for x != 1 {
					if x%2 == 1 {
						x = 3*x + 1
					} else {
						x /= 2
					}
					steps++
				}
				if steps > bestLen {
					bestLen, bestStart = steps, n
				}
			}
			if int(m.R[8]) != bestStart || int(m.R[9]) != bestLen {
				t.Errorf("collatz best = %d (%d steps), want %d (%d)", m.R[8], m.R[9], bestStart, bestLen)
			}
		},
	},
	{
		name: "fxk-functions",
		// Function composition: iterative power via a helper.
		src: `
var out = 0;

func mulmod(a, b) {
    var p; p = (a * b) % 1000003;
    return p;
}

func powmod(base, e) {
    var acc = 1;
    var i = 0;
    while i < e {
        acc = mulmod(acc, base);
        i = i + 1;
    }
    return acc;
}

out = powmod(7, 30);
`,
		verify: func(t *testing.T, m *emu.Machine) {
			// 7^30 mod 1000003 computed in Go.
			acc := int64(1)
			for i := 0; i < 30; i++ {
				acc = acc * 7 % 1000003
			}
			if got := int64(m.R[8]); got != acc {
				t.Errorf("powmod = %d, want %d", got, acc)
			}
		},
	},
	{
		name: "gcd-euclid",
		// gcd(1071, 462) = 21 in r8.
		src: `
var g = 1071;
var bb = 462;
while bb != 0 {
    var tmp; tmp = g % bb;
    g = bb;
    bb = tmp;
}
`,
		verify: func(t *testing.T, m *emu.Machine) {
			if m.R[8] != 21 {
				t.Errorf("gcd = %d, want 21", m.R[8])
			}
		},
	},
}

func TestGoldenProgramsAllModels(t *testing.T) {
	for _, gp := range goldenPrograms {
		gp := gp
		t.Run(gp.name, func(t *testing.T) {
			prog, err := minic.Compile(gp.src)
			if err != nil {
				t.Fatalf("compile: %v", err)
			}
			// Functional verification on the emulator.
			golden := emu.New(prog)
			want, err := golden.Run(100_000_000)
			if err != nil {
				t.Fatal(err)
			}
			if !golden.Halt {
				t.Fatal("did not halt")
			}
			gp.verify(t, golden)

			// Every timing model commits exactly the architectural
			// stream.
			for _, m := range Models() {
				res, err := RunTrace(m, emu.NewStream(emu.New(prog), 0))
				if err != nil {
					t.Fatalf("%s: %v", m.Name, err)
				}
				if res.Counters.Committed != want {
					t.Errorf("%s committed %d, want %d", m.Name, res.Counters.Committed, want)
				}
				if res.Counters.IPC() <= 0 {
					t.Errorf("%s: non-positive IPC", m.Name)
				}
			}
		})
	}
}

// TestGoldenCrossModelOrdering checks the architectural orderings on the
// compiled programs: FX models never fall behind their baselines on these
// INT-dominated kernels, and LITTLE is slowest.
func TestGoldenCrossModelOrdering(t *testing.T) {
	for _, gp := range goldenPrograms {
		prog, err := minic.Compile(gp.src)
		if err != nil {
			t.Fatal(err)
		}
		ipc := map[string]float64{}
		for _, m := range Models() {
			res, err := RunTrace(m, emu.NewStream(emu.New(prog), 0))
			if err != nil {
				t.Fatal(err)
			}
			ipc[m.Name] = res.Counters.IPC()
		}
		if ipc["HALF+FX"] < ipc["HALF"]*0.98 {
			t.Errorf("%s: HALF+FX (%.3f) fell behind HALF (%.3f)", gp.name, ipc["HALF+FX"], ipc["HALF"])
		}
		if ipc["LITTLE"] > ipc["BIG"] {
			t.Errorf("%s: LITTLE (%.3f) beat BIG (%.3f)", gp.name, ipc["LITTLE"], ipc["BIG"])
		}
	}
}

// TestCompiledSuiteIXURateBand cross-checks deviation D1: kernels with
// compiler-like register reuse should show IXU execution rates near the
// paper's compiled-SPEC band (54 %), well below the synthetic proxies.
func TestCompiledSuiteIXURateBand(t *testing.T) {
	logSum, n := 0.0, 0
	for _, c := range CompiledWorkloads() {
		res, err := RunCompiled(HalfFX(), c, 100_000)
		if err != nil {
			t.Fatal(err)
		}
		rate := res.Counters.IXURate()
		t.Logf("%-10s IXU rate %.2f IPC %.2f", c.Name, rate, res.Counters.IPC())
		if rate <= 0 {
			t.Errorf("%s: zero IXU rate", c.Name)
			continue
		}
		logSum += ln(rate)
		n++
	}
	mean := exp(logSum / float64(n))
	if mean < 0.35 || mean > 0.75 {
		t.Errorf("compiled-suite IXU rate %.2f outside the plausible band around the paper's 0.54", mean)
	}
}
