package fxa

import (
	"fmt"
	"testing"
)

// TestEnergyCalibration prints the Figure 8a/8b/9/10 reproduction and
// asserts the coarse orderings of Section VI-D/-G.
func TestEnergyCalibration(t *testing.T) {
	if testing.Short() {
		t.Skip("sweep is slow")
	}
	ev, err := RunEvaluation(120_000, nil)
	if err != nil {
		t.Fatal(err)
	}
	comp := ev.MeanEnergyByComponent()
	for _, m := range []string{"LITTLE", "BIG", "BIG+FX", "HALF", "HALF+FX"} {
		arr := comp[m]
		var tot float64
		for _, v := range arr {
			tot += v
		}
		line := fmt.Sprintf("%-8s total=%.3f | ", m, tot)
		for _, c := range Components() {
			line += fmt.Sprintf("%s=%.3f ", c, arr[c])
		}
		t.Log(line)
	}
	t.Logf("IQ  ratio HALF+FX/BIG = %.3f (paper 0.14)", ev.EnergyRatio("HALF+FX", 0))
	t.Logf("LSQ ratio HALF+FX/BIG = %.3f (paper 0.77)", ev.EnergyRatio("HALF+FX", 1))
	t.Logf("total HALF+FX/BIG = %.3f (paper 0.83)", ev.TotalEnergyRatio("HALF+FX"))
	t.Logf("total BIG+FX/BIG  = %.3f (paper 0.913)", ev.TotalEnergyRatio("BIG+FX"))
	t.Logf("total LITTLE/BIG  = %.3f (paper 0.60)", ev.TotalEnergyRatio("LITTLE"))
	fu := ev.MeanFUEnergy()
	for _, m := range []string{"LITTLE", "BIG", "HALF", "HALF+FX"} {
		s := fu[m]
		t.Logf("FU+bypass %-8s total=%.3f (oxuD %.3f oxuS %.3f ixuD %.3f ixuS %.3f)",
			m, s.Total(), s.OXUDynamic, s.OXUStatic, s.IXUDynamic, s.IXUStatic)
	}
	for _, g := range []Group{GroupINT, GroupFP, GroupALL} {
		t.Logf("PER[%s]: LITTLE %.3f HALF %.3f HALF+FX %.3f BIG+FX %.3f", g,
			ev.PER("LITTLE", g), ev.PER("HALF", g), ev.PER("HALF+FX", g), ev.PER("BIG+FX", g))
	}
	bigArea := AreaOf(Big())
	fxArea := AreaOf(HalfFX())
	litArea := AreaOf(Little())
	t.Logf("area: BIG %.3f HALF+FX %.3f (ratio %.3f, paper 1.027) LITTLE %.3f; HALF+FX L2 share %.2f (paper 0.44) FPU share %.2f (paper 0.24)",
		bigArea.Total(), fxArea.Total(), fxArea.Total()/bigArea.Total(), litArea.Total(),
		fxArea.Area[11]/fxArea.Total(), fxArea.Area[7]/fxArea.Total())
	t.Logf("ready-at-entry rate HALF+FX = %.3f (paper 0.055)", ev.ReadyAtEntryRate("HALF+FX"))

	// Coarse assertions.
	if r := ev.TotalEnergyRatio("HALF+FX"); r >= 1.0 || r < 0.6 {
		t.Errorf("HALF+FX total energy ratio %.3f out of plausible band", r)
	}
	if r := ev.TotalEnergyRatio("LITTLE"); r >= ev.TotalEnergyRatio("HALF+FX") {
		t.Errorf("LITTLE (%.3f) must consume less than HALF+FX (%.3f)", r, ev.TotalEnergyRatio("HALF+FX"))
	}
	if ev.PER("HALF+FX", GroupALL) <= 1.0 {
		t.Errorf("HALF+FX PER %.3f must exceed BIG", ev.PER("HALF+FX", GroupALL))
	}
	if ev.EnergyRatio("HALF+FX", 0) > 0.5 {
		t.Errorf("IQ energy ratio %.3f too high", ev.EnergyRatio("HALF+FX", 0))
	}
}
