// Package fxa is the public API of the FXA reproduction: a cycle-level
// simulator of the Front-end eXecution Architecture (Shioya, Goshima, Ando
// — MICRO 2014) together with the baseline processors it is evaluated
// against, the synthetic SPEC CPU 2006 proxy workloads, and the
// energy/area model used to reproduce the paper's figures.
//
// Quick start:
//
//	w, _ := fxa.WorkloadByName("libquantum")
//	res, err := fxa.Run(fxa.HalfFX(), w, 300_000)
//	fmt.Println(res.Counters.IPC(), res.Counters.IXURate())
//
// The five evaluation models of the paper (Section VI-B) are BIG, HALF,
// LITTLE, BIG+FX and HALF+FX; fxa.Models() returns all of them. See
// cmd/fxabench for the harness that regenerates every table and figure.
package fxa

import (
	"context"
	"fmt"

	"fxa/internal/config"
	"fxa/internal/emu"
	"fxa/internal/engine"
	"fxa/internal/sampling"
	"fxa/internal/sweep"
	"fxa/internal/workload"

	// Blank imports register the timing cores with the engine layer; the
	// public API never names a core package.
	_ "fxa/internal/core"
	_ "fxa/internal/dualissue"
	_ "fxa/internal/inorder"
)

// SweepOptions configures the simulation-orchestration engine used by
// RunEvaluationSweep and the figure sweeps: worker-pool size, result
// cache, error mode and the serialized progress-event callback. See
// internal/sweep.
type SweepOptions = sweep.Options

// SweepStats reports one engine run: jobs run, cache hits/misses,
// aggregate simulated instructions and throughput, and wall time.
type SweepStats = sweep.Stats

// SweepEvent is one serialized progress event; SweepOptions.OnEvent is
// always invoked from a single goroutine.
type SweepEvent = sweep.Event

// SweepJob is one unit of sweep work: a labelled, fingerprinted,
// self-contained simulation run. EvaluationJob builds the canonical one;
// external executors (internal/serve) run them through sweep.RunOne.
type SweepJob = sweep.Job

// SweepCache is the content-addressed on-disk result cache.
type SweepCache = sweep.Cache

// Re-exported sweep event kinds and error modes.
const (
	SweepEventStart = sweep.EventStart
	SweepEventDone  = sweep.EventDone
	SweepFailFast   = sweep.FailFast
	SweepCollectAll = sweep.CollectAll
)

// OpenSweepCache opens (creating if needed) a simulation result cache
// rooted at dir. Entries are keyed by a hash of the full model
// configuration, the workload parameters, the instruction budget and the
// simulator version (sweep.SimVersion), so any configuration or
// simulator change invalidates them.
func OpenSweepCache(dir string) (*SweepCache, error) { return sweep.OpenCache(dir) }

// FFMode selects how the emulator advances during functional
// fast-forward: FFFast uses the predecoded basic-block interpreter (the
// default, ~5x faster), FFStep forces the single-instruction reference
// path. The two are bit-identical; FFStep exists for differential testing
// and debugging.
type FFMode = emu.FFMode

// Re-exported fast-forward modes.
const (
	FFFast = emu.FFFast
	FFStep = emu.FFStep
)

// SetFFMode sets the process-wide default fast-forward mode used by all
// machines created afterwards (existing machines are unaffected).
func SetFFMode(m FFMode) { emu.SetDefaultFFMode(m) }

// Model is a processor configuration (a column of Table I).
type Model = config.Model

// Workload is a synthetic SPEC CPU 2006 proxy program description.
type Workload = workload.Params

// Result carries the statistics of one simulation run. It is the engine
// layer's schema-versioned result (engine.Result): JSON-serializable, with
// an optional per-interval metrics series (see RunTraceIntervals).
type Result = engine.Result

// Interval is one entry of a Result's interval-metrics series: the
// counter deltas over a stretch of roughly IntervalInsts committed
// instructions, plus an instantaneous ROB/IQ occupancy sample at the
// interval boundary. Summing every interval's counters reproduces the
// run's final counters exactly.
type Interval = engine.Interval

// The five evaluation models of Section VI-B, plus the dual-issue
// in-order pair of the extended big.LITTLE landscape.
var (
	Big    = config.Big
	Half   = config.Half
	Little = config.Little
	BigFX  = config.BigFX
	HalfFX = config.HalfFX
	Dual   = config.Dual
	DualSI = config.DualSI
)

// Models returns the five evaluation models in the paper's order.
func Models() []Model { return config.Models() }

// AllModels returns every named model across all registered core kinds:
// the paper's five plus DUAL-SI and DUAL (internal/dualissue).
func AllModels() []Model { return config.AllModels() }

// ModelByName resolves "BIG", "HALF", "LITTLE", "BIG+FX", "HALF+FX",
// "DUAL-SI" or "DUAL".
func ModelByName(name string) (Model, error) { return config.ByName(name) }

// Workloads returns the 29 SPEC CPU 2006 proxies (12 INT + 17 FP).
func Workloads() []Workload { return workload.Catalog() }

// IntWorkloads returns the INT benchmark group.
func IntWorkloads() []Workload { return workload.INT() }

// FPWorkloads returns the FP benchmark group.
func FPWorkloads() []Workload { return workload.FPGroup() }

// CompiledWorkload is an FXK-authored kernel compiled with the bundled
// compiler; see internal/workload.Compiled.
type CompiledWorkload = workload.Compiled

// CompiledWorkloads returns the FXK kernel suite — compiled code whose
// register reuse resembles real binaries (EXPERIMENTS.md, deviation D1).
func CompiledWorkloads() []CompiledWorkload { return workload.CompiledCatalog() }

// CompiledWorkloadByName returns the named FXK kernel.
func CompiledWorkloadByName(name string) (CompiledWorkload, error) {
	c, ok := workload.CompiledByName(name)
	if !ok {
		return CompiledWorkload{}, fmt.Errorf("fxa: unknown compiled workload %q", name)
	}
	return c, nil
}

// RunCompiled simulates maxInsts instructions (0 = to completion) of an
// FXK kernel on model m.
func RunCompiled(m Model, c CompiledWorkload, maxInsts uint64) (Result, error) {
	trace, err := c.NewTrace(maxInsts)
	if err != nil {
		return Result{}, err
	}
	res, err := RunTrace(m, trace)
	if err != nil {
		return Result{}, fmt.Errorf("fxa: %s on %s: %w", m.Name, c.Name, err)
	}
	if terr := trace.Err(); terr != nil {
		// A trace that faulted mid-run (emulator error) truncates silently
		// from the timing model's point of view; surface it like Run and
		// RunWarm do.
		return Result{}, fmt.Errorf("fxa: %s trace: %w", c.Name, terr)
	}
	return res, nil
}

// WorkloadByName returns the named proxy.
func WorkloadByName(name string) (Workload, error) {
	p, ok := workload.ByName(name)
	if !ok {
		return Workload{}, fmt.Errorf("fxa: unknown workload %q", name)
	}
	return p, nil
}

// Run simulates maxInsts dynamic instructions of w on model m and returns
// the collected statistics. The timing model (out-of-order internal/core
// or in-order internal/inorder) is resolved through the engine registry
// by m.Kind.
func Run(m Model, w Workload, maxInsts uint64) (Result, error) {
	trace, err := w.NewTrace(maxInsts)
	if err != nil {
		return Result{}, err
	}
	res, err := RunTrace(m, trace)
	if err != nil {
		return Result{}, fmt.Errorf("fxa: %s on %s: %w", m.Name, w.Name, err)
	}
	if terr := trace.Err(); terr != nil {
		return Result{}, fmt.Errorf("fxa: %s trace: %w", w.Name, terr)
	}
	return res, nil
}

// RunWarm is Run with a functional warmup: the first warmup instructions
// execute only on the emulator (no timing), mirroring the paper's
// 4G-instruction skip before its 100M-instruction measurement window.
func RunWarm(m Model, w Workload, warmup, maxInsts uint64) (Result, error) {
	trace, err := w.NewTraceWarm(warmup, maxInsts)
	if err != nil {
		return Result{}, err
	}
	res, err := RunTrace(m, trace)
	if err != nil {
		return Result{}, fmt.Errorf("fxa: %s on %s: %w", m.Name, w.Name, err)
	}
	if terr := trace.Err(); terr != nil {
		return Result{}, fmt.Errorf("fxa: %s trace: %w", w.Name, terr)
	}
	return res, nil
}

// SamplingConfig describes a systematic-sampling schedule — windows,
// window length, skip, detailed warm-up and confidence level (see
// internal/sampling).
type SamplingConfig = sampling.Config

// SamplingSummary aggregates a sampled simulation: per-window results and
// Student-t confidence intervals on IPC, branch MPKI and energy per
// instruction over the measured (warm-excluded) windows.
type SamplingSummary = sampling.Summary

// Sample estimates w's behaviour on m with systematic sampling: detailed
// windows separated by functional fast-forwards, far cheaper than one
// long detailed run, with per-metric confidence intervals as the accuracy
// signal.
func Sample(m Model, w Workload, cfg SamplingConfig) (SamplingSummary, error) {
	return SampleContext(context.Background(), m, w, cfg)
}

// SampleContext is Sample under a context: cancelling ctx interrupts both
// the functional fast-forward and the in-flight detailed windows promptly.
func SampleContext(ctx context.Context, m Model, w Workload, cfg SamplingConfig) (SamplingSummary, error) {
	return sampling.Run(ctx, m, w, cfg)
}

// RunTrace simulates an arbitrary dynamic instruction stream on model m.
// Use this to run programs assembled with internal/asm conventions via
// your own emulator setup. The timing model is looked up in the engine
// registry by m.Kind — no core package is named here.
func RunTrace(m Model, trace *emu.Stream) (Result, error) {
	return RunTraceContext(context.Background(), m, trace)
}

// RunTraceContext is RunTrace under a context: cancelling ctx interrupts
// the simulation within a few thousand simulated cycles and returns ctx's
// error.
func RunTraceContext(ctx context.Context, m Model, trace *emu.Stream) (Result, error) {
	return engine.Run(ctx, m, trace)
}

// RunTraceIntervals is RunTraceContext with interval-metrics collection:
// the returned Result carries a series of counter-delta snapshots cut
// roughly every intervalInsts committed instructions (Result.Intervals).
// The series partitions the run exactly — summing every interval's
// counters reproduces the final counters.
func RunTraceIntervals(ctx context.Context, m Model, trace *emu.Stream, intervalInsts uint64) (Result, error) {
	e, err := engine.New(m, trace)
	if err != nil {
		return Result{}, err
	}
	return engine.Drive(ctx, e, engine.Options{IntervalInsts: intervalInsts})
}

// RunTraceIntervalsStream is RunTraceIntervals with a live consumer:
// onInterval is invoked synchronously from the driving goroutine as each
// interval is cut, including the tail interval, so a serving layer can
// push the series over the wire while the simulation is still running.
// The returned Result carries the same series in Result.Intervals.
func RunTraceIntervalsStream(ctx context.Context, m Model, trace *emu.Stream, intervalInsts uint64, onInterval func(Interval)) (Result, error) {
	e, err := engine.New(m, trace)
	if err != nil {
		return Result{}, err
	}
	return engine.Drive(ctx, e, engine.Options{IntervalInsts: intervalInsts, OnInterval: onInterval})
}
