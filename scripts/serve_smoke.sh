#!/bin/sh
# End-to-end smoke test of the fxad daemon: build the real binary, start
# it on an ephemeral port with a throwaway cache, walk one job through
# the HTTP API with curl (submit -> NDJSON stream -> result), prove that
# resubmitting the identical job is answered from the shared cache, and
# check that SIGTERM drains to a clean exit 0. Everything here is plain
# POSIX sh + curl + grep, so it runs identically on a laptop and in CI
# (`make serve-smoke`).
set -eu

GO="${GO:-go}"
WORK="$(mktemp -d)"
FXAD_PID=""
cleanup() {
	[ -n "$FXAD_PID" ] && kill "$FXAD_PID" 2>/dev/null || true
	rm -rf "$WORK"
}
trap cleanup EXIT INT TERM

fail() {
	echo "serve-smoke: FAIL: $*" >&2
	echo "--- fxad log ---" >&2
	cat "$WORK/fxad.log" >&2 || true
	exit 1
}

. "$(dirname "$0")/fxad_lib.sh"

echo "serve-smoke: building fxad"
$GO build -o "$WORK/fxad" ./cmd/fxad

"$WORK/fxad" -version | grep -q '^fxad ' || fail "-version printed nothing usable"

echo "serve-smoke: starting daemon"
"$WORK/fxad" -addr 127.0.0.1:0 -cachedir "$WORK/cache" -drain 30s \
	>"$WORK/fxad.log" 2>&1 &
FXAD_PID=$!

ADDR="$(fxad_wait_addr "$WORK/fxad.log" "$FXAD_PID")"
BASE="http://$ADDR"
echo "serve-smoke: daemon at $BASE"

curl -fsS "$BASE/healthz" | grep -q '"status":"ok"' || fail "/healthz not ok"
curl -fsS "$BASE/healthz" | grep -q '"version":"..*"' || fail "/healthz has no build version"

SPEC='{"tenant":"smoke","model":"HALF+FX","workload":"libquantum","max_insts":60000,"interval_insts":8192}'

echo "serve-smoke: submitting job"
SUBMIT="$(curl -fsS -X POST -H 'Content-Type: application/json' -d "$SPEC" "$BASE/v1/jobs")"
JOB="$(printf '%s' "$SUBMIT" | sed -n 's/.*"id":"\([^"]*\)".*/\1/p')"
[ -n "$JOB" ] || fail "submit returned no job id: $SUBMIT"

echo "serve-smoke: streaming $JOB"
STREAM="$(curl -fsS --max-time 120 "$BASE/v1/jobs/$JOB")"
printf '%s\n' "$STREAM" | grep -q '"event":"queued"' || fail "stream missing queued event"
printf '%s\n' "$STREAM" | grep -q '"event":"started"' || fail "stream missing started event"
printf '%s\n' "$STREAM" | grep -q '"event":"interval"' || fail "stream missing interval events"
printf '%s\n' "$STREAM" | grep -q '"event":"result"' || fail "stream missing result event"
printf '%s\n' "$STREAM" | grep -q '"cache_hit":true' && fail "first run claims a cache hit"

echo "serve-smoke: resubmitting (must hit the shared cache)"
JOB2="$(curl -fsS -X POST -H 'Content-Type: application/json' -d "$SPEC" "$BASE/v1/jobs" |
	sed -n 's/.*"id":"\([^"]*\)".*/\1/p')"
[ -n "$JOB2" ] || fail "resubmit returned no job id"
curl -fsS --max-time 120 "$BASE/v1/jobs/$JOB2" | grep -q '"cache_hit":true' ||
	fail "resubmitted job was not served from the cache"

curl -fsS "$BASE/v1/stats" | grep -q '"cache_hits":1' || fail "/v1/stats does not count the cache hit"

echo "serve-smoke: SIGTERM drain"
kill -TERM "$FXAD_PID"
EXIT=0
wait "$FXAD_PID" || EXIT=$?
FXAD_PID=""
[ "$EXIT" -eq 0 ] || fail "daemon exited $EXIT on SIGTERM, want 0"
grep -q 'fxad: bye' "$WORK/fxad.log" || fail "daemon did not log a clean shutdown"

echo "serve-smoke: PASS"
