#!/bin/sh
# Nightly chaos exercise of the sharded fxad fabric: repeatedly run a
# full evaluation sweep through a fresh 3-shard + router cluster while
# SIGKILLing a randomly chosen shard at a randomly chosen time, and
# assert the sweep still completes bit-identically to a local serial
# baseline. A final case kills and restarts the *router* between two
# sweeps over the same shards and asserts the second sweep is identical
# (and served from the shards' caches — router state is disposable, the
# fabric's source of truth is the content-addressed caches).
#
# Randomness is seeded and printed up front (and again on failure), so
# any run reproduces with CHAOS_SEED=<seed>. Knobs:
#
#   CHAOS_ITERS  kill-a-shard iterations (default 3)
#   CHAOS_SEED   RNG seed (default: seconds since epoch)
#   CHAOS_N      instructions per sweep cell (default 200000)
#   CHAOS_WORK   work/log directory, kept on exit for artifact upload
#                (default: a fresh mktemp -d, removed on success)
set -eu

GO="${GO:-go}"
CHAOS_ITERS="${CHAOS_ITERS:-3}"
CHAOS_SEED="${CHAOS_SEED:-$(date +%s)}"
CHAOS_N="${CHAOS_N:-200000}"
KEEP_WORK=1
if [ -z "${CHAOS_WORK:-}" ]; then
	CHAOS_WORK="$(mktemp -d)"
	KEEP_WORK=0
fi
mkdir -p "$CHAOS_WORK"
echo "cluster-chaos: seed $CHAOS_SEED ($CHAOS_ITERS iterations, n=$CHAOS_N, work $CHAOS_WORK)"

S1_PID="" S2_PID="" S3_PID="" ROUTER_PID=""
cleanup() {
	for pid in "$ROUTER_PID" "$S1_PID" "$S2_PID" "$S3_PID"; do
		[ -n "$pid" ] && kill -9 "$pid" 2>/dev/null || true
	done
	[ "$KEEP_WORK" -eq 0 ] && rm -rf "$CHAOS_WORK" || true
}
trap cleanup EXIT INT TERM

fail() {
	echo "cluster-chaos: FAIL (seed $CHAOS_SEED): $*" >&2
	echo "cluster-chaos: logs kept in $CHAOS_WORK" >&2
	KEEP_WORK=1
	exit 1
}

. "$(dirname "$0")/fxad_lib.sh"

# rand <max>: deterministic pseudo-random integer in [0, max), left in
# $RAND_OUT. Not `$(...)`-friendly — the draw counter must advance in
# this shell, not a subshell, or every draw repeats. The first rand()
# after srand() is nearly identical for adjacent seeds in common awks,
# so a few draws are discarded to let the generator states diverge.
RAND_N=0
rand() {
	RAND_N=$((RAND_N + 1))
	RAND_OUT="$(awk -v seed="$CHAOS_SEED" -v n="$RAND_N" -v max="$1" \
		'BEGIN { srand(seed + n); for (i = 0; i < 3; i++) rand(); print int(rand() * max) }')"
}

echo "cluster-chaos: building fxad and fxabench"
$GO build -o "$CHAOS_WORK/fxad" ./cmd/fxad
$GO build -o "$CHAOS_WORK/fxabench" ./cmd/fxabench

echo "cluster-chaos: computing local serial baseline"
"$CHAOS_WORK/fxabench" -n "$CHAOS_N" -experiment fig7 -format csv -q -j 1 \
	>"$CHAOS_WORK/local.csv" || fail "local baseline sweep failed"

# start_cluster <tag>: boots 3 shards + router, sets A1/A2/A3, ROUTER
# and the *_PID variables. Logs under $CHAOS_WORK/<tag>-*.log.
start_cluster() {
	tag="$1"
	for i in 1 2 3; do
		"$CHAOS_WORK/fxad" -addr 127.0.0.1:0 -cachedir "$CHAOS_WORK/$tag-cache$i" -j 2 \
			-peersfile "$CHAOS_WORK/$tag-peers.txt" -drain 30s \
			>"$CHAOS_WORK/$tag-shard$i.log" 2>&1 &
		eval "S${i}_PID=$!"
	done
	A1="$(fxad_wait_addr "$CHAOS_WORK/$tag-shard1.log" "$S1_PID")"
	A2="$(fxad_wait_addr "$CHAOS_WORK/$tag-shard2.log" "$S2_PID")"
	A3="$(fxad_wait_addr "$CHAOS_WORK/$tag-shard3.log" "$S3_PID")"
	printf 'http://%s\nhttp://%s\nhttp://%s\n' "$A1" "$A2" "$A3" >"$CHAOS_WORK/$tag-peers.txt"
	"$CHAOS_WORK/fxad" -addr 127.0.0.1:0 -route "http://$A1,http://$A2,http://$A3" \
		-probe-interval 250ms -probe-fails 2 -drain 30s \
		>"$CHAOS_WORK/$tag-router.log" 2>&1 &
	ROUTER_PID=$!
	RA="$(fxad_wait_addr "$CHAOS_WORK/$tag-router.log" "$ROUTER_PID")"
	ROUTER="http://$RA"
}

stop_cluster() {
	for pid in "$ROUTER_PID" "$S1_PID" "$S2_PID" "$S3_PID"; do
		[ -n "$pid" ] && kill -9 "$pid" 2>/dev/null || true
	done
	wait 2>/dev/null || true
	ROUTER_PID="" S1_PID="" S2_PID="" S3_PID=""
}

iter=1
while [ "$iter" -le "$CHAOS_ITERS" ]; do
	echo "cluster-chaos: iteration $iter/$CHAOS_ITERS"
	start_cluster "iter$iter"

	"$CHAOS_WORK/fxabench" -serve-url "$ROUTER" -tenant chaos -n "$CHAOS_N" \
		-experiment fig7 -format csv -q \
		>"$CHAOS_WORK/iter$iter-remote.csv" 2>"$CHAOS_WORK/iter$iter-sweep.log" &
	SWEEP_PID=$!

	# Kill a random shard after a random delay inside the sweep window.
	rand 4000
	DELAY_MS="$RAND_OUT"
	rand 3
	VICTIM=$((RAND_OUT + 1))
	sleep "$(awk -v ms="$DELAY_MS" 'BEGIN { printf "%.3f", ms / 1000 }')"
	eval "VICTIM_PID=\$S${VICTIM}_PID"
	echo "cluster-chaos: killing shard $VICTIM after ${DELAY_MS}ms"
	kill -9 "$VICTIM_PID" 2>/dev/null || true
	eval "S${VICTIM}_PID="

	SWEEP_EXIT=0
	wait "$SWEEP_PID" || SWEEP_EXIT=$?
	[ "$SWEEP_EXIT" -eq 0 ] || {
		cat "$CHAOS_WORK/iter$iter-sweep.log" >&2 || true
		fail "iteration $iter: sweep exited $SWEEP_EXIT (killed shard $VICTIM after ${DELAY_MS}ms)"
	}
	diff -u "$CHAOS_WORK/local.csv" "$CHAOS_WORK/iter$iter-remote.csv" >/dev/null ||
		fail "iteration $iter: sweep differs from baseline (killed shard $VICTIM after ${DELAY_MS}ms)"

	stop_cluster
	iter=$((iter + 1))
done

echo "cluster-chaos: router-restart case"
start_cluster "restart"
ROUTE_ARG="http://$A1,http://$A2,http://$A3"
"$CHAOS_WORK/fxabench" -serve-url "$ROUTER" -tenant chaos -n "$CHAOS_N" \
	-experiment fig7 -format csv -q >"$CHAOS_WORK/restart-1.csv" ||
	fail "router-restart: first sweep failed"

echo "cluster-chaos: killing and restarting the router"
kill -9 "$ROUTER_PID" 2>/dev/null || true
wait "$ROUTER_PID" 2>/dev/null || true
"$CHAOS_WORK/fxad" -addr 127.0.0.1:0 -route "$ROUTE_ARG" \
	-probe-interval 250ms -probe-fails 2 -drain 30s \
	>"$CHAOS_WORK/restart-router2.log" 2>&1 &
ROUTER_PID=$!
RA="$(fxad_wait_addr "$CHAOS_WORK/restart-router2.log" "$ROUTER_PID")"
ROUTER="http://$RA"

"$CHAOS_WORK/fxabench" -serve-url "$ROUTER" -tenant chaos -n "$CHAOS_N" \
	-experiment fig7 -format csv -q >"$CHAOS_WORK/restart-2.csv" ||
	fail "router-restart: second sweep failed"
diff -u "$CHAOS_WORK/restart-1.csv" "$CHAOS_WORK/restart-2.csv" >/dev/null ||
	fail "router-restart: sweeps across a router restart differ"
diff -u "$CHAOS_WORK/local.csv" "$CHAOS_WORK/restart-2.csv" >/dev/null ||
	fail "router-restart: post-restart sweep differs from baseline"
# Router state is disposable precisely because the shards' caches are
# the source of truth: the rerun must be answered from them, not
# resimulated.
for a in "$A1" "$A2" "$A3"; do
	curl -fsS "http://$a/v1/stats" >>"$CHAOS_WORK/restart-shard-stats.json"
	printf '\n' >>"$CHAOS_WORK/restart-shard-stats.json"
done
grep -q '"cache_hits":[1-9]' "$CHAOS_WORK/restart-shard-stats.json" ||
	fail "router-restart: no shard served the rerun from its cache"
stop_cluster

echo "cluster-chaos: PASS (seed $CHAOS_SEED)"
[ "$KEEP_WORK" -eq 0 ] || echo "cluster-chaos: logs in $CHAOS_WORK"
