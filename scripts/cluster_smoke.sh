#!/bin/sh
# Multi-shard smoke test of the sharded fxad fabric: build the real
# binaries, boot three worker shards (each with its own cache, federated
# over a shared peers file) and one router on loopback ephemeral ports,
# then prove the fabric's headline claims end to end:
#
#   - the router reports all three shards live;
#   - cache federation answers a shard's miss from a peer's cache;
#   - a full evaluation sweep submitted through the router (fxabench
#     -serve-url) is bit-identical to a local serial run — even though
#     one shard is SIGKILLed mid-sweep, while a long pin job streams
#     from it, and the router transparently resubmits its jobs;
#   - the pin job's stream sees exactly one terminal result event;
#   - the router's /v1/stats counts the resubmissions and the mark-down.
#
# Plain POSIX sh + curl + grep, so it runs identically on a laptop and
# in CI (`make cluster-smoke`).
set -eu

GO="${GO:-go}"
SMOKE_N="${SMOKE_N:-200000}"
WORK="$(mktemp -d)"
S1_PID="" S2_PID="" S3_PID="" ROUTER_PID="" CURL_PID="" SWEEP_PID=""
cleanup() {
	for pid in "$CURL_PID" "$SWEEP_PID" "$ROUTER_PID" "$S1_PID" "$S2_PID" "$S3_PID"; do
		[ -n "$pid" ] && kill "$pid" 2>/dev/null || true
	done
	rm -rf "$WORK"
}
trap cleanup EXIT INT TERM

fail() {
	echo "cluster-smoke: FAIL: $*" >&2
	for log in router shard1 shard2 shard3; do
		echo "--- $log log ---" >&2
		cat "$WORK/$log.log" >&2 2>/dev/null || true
	done
	exit 1
}

. "$(dirname "$0")/fxad_lib.sh"

echo "cluster-smoke: building fxad and fxabench"
$GO build -o "$WORK/fxad" ./cmd/fxad
$GO build -o "$WORK/fxabench" ./cmd/fxabench

echo "cluster-smoke: starting 3 worker shards"
# The peers file does not exist yet; shards re-read it on every cache
# miss, so writing it after all addresses are known is race-free.
for i in 1 2 3; do
	"$WORK/fxad" -addr 127.0.0.1:0 -cachedir "$WORK/cache$i" -j 2 \
		-peersfile "$WORK/peers.txt" -drain 30s \
		>"$WORK/shard$i.log" 2>&1 &
	eval "S${i}_PID=$!"
done
A1="$(fxad_wait_addr "$WORK/shard1.log" "$S1_PID")"
A2="$(fxad_wait_addr "$WORK/shard2.log" "$S2_PID")"
A3="$(fxad_wait_addr "$WORK/shard3.log" "$S3_PID")"
printf 'http://%s\nhttp://%s\nhttp://%s\n' "$A1" "$A2" "$A3" >"$WORK/peers.txt"
echo "cluster-smoke: shards at $A1 $A2 $A3"

echo "cluster-smoke: starting router"
"$WORK/fxad" -addr 127.0.0.1:0 -route "http://$A1,http://$A2,http://$A3" \
	-probe-interval 250ms -probe-fails 2 -drain 30s \
	>"$WORK/router.log" 2>&1 &
ROUTER_PID=$!
RA="$(fxad_wait_addr "$WORK/router.log" "$ROUTER_PID")"
ROUTER="http://$RA"
echo "cluster-smoke: router at $ROUTER"

curl -fsS "$ROUTER/healthz" | grep -q '"shards_live":3' || fail "router does not see 3 live shards"

echo "cluster-smoke: cache federation (shard2 answers from shard1's cache)"
FED_SPEC='{"tenant":"smoke","model":"HALF+FX","workload":"libquantum","max_insts":60000}'
J1="$(fxad_submit "http://$A1" "$FED_SPEC")"
curl -fsS --max-time 120 "http://$A1/v1/jobs/$J1" | grep -q '"event":"result"' ||
	fail "federation seed job did not finish on shard1"
J2="$(fxad_submit "http://$A2" "$FED_SPEC")"
curl -fsS --max-time 120 "http://$A2/v1/jobs/$J2" | grep -q '"cache_hit":true' ||
	fail "shard2 did not answer the identical job from the federated cache"
curl -fsS "http://$A2/v1/stats" | grep -q '"federated":1' ||
	fail "shard2 stats do not count the federated answer"

echo "cluster-smoke: pinning a long job through the router"
PIN_SPEC='{"tenant":"smoke","model":"HALF+FX","workload":"libquantum","max_insts":12000000,"interval_insts":1000000}'
PIN="$(fxad_submit "$ROUTER" "$PIN_SPEC")"
curl -sN --max-time 600 "$ROUTER/v1/jobs/$PIN" >"$WORK/pin.stream" &
CURL_PID=$!

# Wait for the pin job's started event; its shard annotation names the
# victim. Then wait for an interval event, proving the simulation is
# genuinely mid-flight before the kill.
VICTIM_ADDR=""
i=0
while [ $i -lt 300 ]; do
	VICTIM_ADDR="$(sed -n 's/.*"event":"started".*"shard":"http:\/\/\([^"]*\)".*/\1/p' "$WORK/pin.stream" | head -n1)"
	[ -n "$VICTIM_ADDR" ] && grep -q '"event":"interval"' "$WORK/pin.stream" && break
	VICTIM_ADDR=""
	sleep 0.1
	i=$((i + 1))
done
[ -n "$VICTIM_ADDR" ] || fail "pin job never reported a shard + interval"
case "$VICTIM_ADDR" in
"$A1") VICTIM_PID=$S1_PID ;;
"$A2") VICTIM_PID=$S2_PID ;;
"$A3") VICTIM_PID=$S3_PID ;;
*) fail "pin job started on unknown shard $VICTIM_ADDR" ;;
esac

echo "cluster-smoke: starting remote sweep through the router"
"$WORK/fxabench" -serve-url "$ROUTER" -tenant smoke -n "$SMOKE_N" \
	-experiment fig7 -format csv -q >"$WORK/remote.csv" 2>"$WORK/sweep.log" &
SWEEP_PID=$!

echo "cluster-smoke: SIGKILL shard at $VICTIM_ADDR mid-flight"
kill -9 "$VICTIM_PID"
case "$VICTIM_PID" in
"$S1_PID") S1_PID="" ;;
"$S2_PID") S2_PID="" ;;
"$S3_PID") S3_PID="" ;;
esac

echo "cluster-smoke: waiting for the pin job to complete elsewhere"
wait "$CURL_PID" || fail "pin stream did not run to completion"
CURL_PID=""
RESULTS="$(grep -c '"event":"result"' "$WORK/pin.stream" || true)"
[ "$RESULTS" = "1" ] || fail "pin stream has $RESULTS result events, want exactly 1"
grep -q '"event":"error"' "$WORK/pin.stream" && fail "pin stream has an error event"
STARTS="$(grep -c '"event":"started"' "$WORK/pin.stream" || true)"
[ "$STARTS" = "1" ] || fail "pin stream has $STARTS started events, want exactly 1"

echo "cluster-smoke: waiting for the remote sweep"
SWEEP_EXIT=0
wait "$SWEEP_PID" || SWEEP_EXIT=$?
SWEEP_PID=""
[ "$SWEEP_EXIT" -eq 0 ] || {
	cat "$WORK/sweep.log" >&2 || true
	fail "remote sweep exited $SWEEP_EXIT"
}

echo "cluster-smoke: comparing against a local serial run"
"$WORK/fxabench" -n "$SMOKE_N" -experiment fig7 -format csv -q -j 1 >"$WORK/local.csv" ||
	fail "local baseline sweep failed"
diff -u "$WORK/local.csv" "$WORK/remote.csv" >/dev/null ||
	fail "remote sweep differs from the local serial run (determinism broken)"

STATS="$(curl -fsS "$ROUTER/v1/stats")"
printf '%s' "$STATS" | grep -q '"resubmitted":0' && fail "router counted no resubmissions after a shard kill"
printf '%s' "$STATS" | grep -q '"resubmitted":' || fail "router stats have no resubmitted counter"
printf '%s' "$STATS" | grep -q '"shards_live":2' || fail "router still counts the killed shard live"

echo "cluster-smoke: SIGTERM drain of router and surviving shards"
fxad_kill_wait "$ROUTER_PID" TERM
ROUTER_PID=""
[ "$FXAD_EXIT" -eq 0 ] || fail "router exited $FXAD_EXIT on SIGTERM, want 0"
for name in S1 S2 S3; do
	eval "pid=\$${name}_PID"
	[ -n "$pid" ] || continue
	fxad_kill_wait "$pid" TERM
	eval "${name}_PID="
	[ "$FXAD_EXIT" -eq 0 ] || fail "shard $name exited $FXAD_EXIT on SIGTERM, want 0"
done

echo "cluster-smoke: PASS"
