# Shared helpers for the fxad smoke scripts (serve_smoke.sh,
# cluster_smoke.sh, cluster_chaos.sh). Plain POSIX sh; source it after
# defining fail().
#
# Every daemon binds 127.0.0.1:0 and prints "fxad: listening on <addr>"
# once its listener is up, so scripts never pick ports themselves — no
# collisions on busy CI runners, no retry loops on bind.

# fxad_wait_addr <logfile> <pid>
# Waits for the daemon behind <pid> to report its bound address in
# <logfile> and prints it. Fails the script if the daemon dies first or
# stays silent for ~10s.
fxad_wait_addr() {
	_lib_log="$1"
	_lib_pid="$2"
	_lib_addr=""
	_lib_i=0
	while [ "$_lib_i" -lt 100 ]; do
		_lib_addr="$(sed -n 's/^fxad: listening on //p' "$_lib_log" 2>/dev/null | head -n1)"
		[ -n "$_lib_addr" ] && break
		kill -0 "$_lib_pid" 2>/dev/null || fail "daemon (pid $_lib_pid, log $_lib_log) died during startup"
		sleep 0.1
		_lib_i=$((_lib_i + 1))
	done
	[ -n "$_lib_addr" ] || fail "daemon (log $_lib_log) never reported its listen address"
	printf '%s\n' "$_lib_addr"
}

# fxad_submit <base-url> <json-spec>
# Submits a job spec and prints the job id.
fxad_submit() {
	_lib_reply="$(curl -fsS -X POST -H 'Content-Type: application/json' -d "$2" "$1/v1/jobs")" ||
		fail "submit to $1 failed"
	_lib_id="$(printf '%s' "$_lib_reply" | sed -n 's/.*"id":"\([^"]*\)".*/\1/p')"
	[ -n "$_lib_id" ] || fail "submit to $1 returned no job id: $_lib_reply"
	printf '%s\n' "$_lib_id"
}

# fxad_kill_wait <pid> <signal>
# Signals a daemon and reaps it, leaving the exit status in FXAD_EXIT.
# Deliberately not `$(...)`-friendly: `wait` only works in the shell
# that spawned the daemon, and a command substitution is a subshell.
fxad_kill_wait() {
	kill "-$2" "$1" 2>/dev/null || true
	FXAD_EXIT=0
	wait "$1" || FXAD_EXIT=$?
}
