#!/bin/sh
# Cross-checks the CI workflows against the Makefile: every `make <target>`
# a workflow invokes must actually exist, so a renamed or deleted target
# fails this gate instead of silently breaking a workflow that only runs
# nightly. Runs in CI itself (`make ci-sanity`) and locally.
set -eu

fail=0
for wf in .github/workflows/*.yml; do
	[ -f "$wf" ] || continue
	# Every `make target1 target2 ...` invocation in run: lines, one
	# target token per output line. Variable-prefixed invocations like
	# `FOO=1 make x` are covered by matching `make` anywhere in the line.
	targets="$(grep -oE '(^|[ \t])make[ \t]+[A-Za-z0-9_.= -]+' "$wf" |
		sed 's/.*make[ \t]*//' | tr ' ' '\n' | sed '/^$/d' | sed '/^-/d' | sort -u)"
	for t in $targets; do
		# Skip variable assignments passed to make (FOO=bar).
		case "$t" in *=*) continue ;; esac
		if ! grep -qE "^$t:" Makefile; then
			echo "ci-sanity: $wf invokes 'make $t' but the Makefile has no target '$t'" >&2
			fail=1
		fi
	done
done
[ "$fail" -eq 0 ] || exit 1
echo "ci-sanity: all workflow make targets exist"
